#include <gtest/gtest.h>

#include "sim/memory_system.hh"
#include "workloads/dsl.hh"

namespace re::sim {
namespace {

using re::workloads::PrefetchHint;

MachineConfig machine() {
  MachineConfig m = amd_phenom_ii();
  m.hw_prefetcher.enabled = false;
  return m;
}

TEST(Writeback, StoreHitMarksLineDirty) {
  SetAssocCache cache(CacheGeometry{4 << 10, 2});
  cache.fill(1, FillOrigin::Demand);
  EXPECT_TRUE(cache.mark_dirty(1));
  EXPECT_FALSE(cache.mark_dirty(99));
  const auto ev = [&] {
    // Force line 1 out of its set (2 ways): fill two conflicting lines.
    const std::uint64_t sets = cache.num_sets();
    cache.fill(1 + sets, FillOrigin::Demand);
    return cache.fill(1 + 2 * sets, FillOrigin::Demand);
  }();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line, 1u);
  EXPECT_TRUE(ev->dirty);
}

TEST(Writeback, CleanEvictionsCostNothing) {
  MemorySystem mem(machine(), 1);
  // Stream enough read-only lines to cause plenty of evictions everywhere.
  for (int i = 0; i < 50000; ++i) {
    mem.demand_load(0, 1, static_cast<Addr>(i) * kLineSize,
                    static_cast<Cycle>(i) * 10);
  }
  EXPECT_EQ(mem.dram_stats().writeback_lines, 0u);
}

TEST(Writeback, DirtyStreamEventuallyWritesBack) {
  MemorySystem mem(machine(), 1);
  // Store-stream far beyond every cache: each line is eventually evicted
  // dirty from the LLC and retired to DRAM.
  const int lines = 50000;
  for (int i = 0; i < lines; ++i) {
    mem.demand_load(0, 1, static_cast<Addr>(i) * kLineSize,
                    static_cast<Cycle>(i) * 10, false, /*is_store=*/true);
  }
  EXPECT_EQ(mem.core_stats(0).stores, static_cast<std::uint64_t>(lines));
  // Most lines (all but the ones still resident) must have been written
  // back exactly once.
  const std::uint64_t resident = machine().llc.num_lines() +
                                 machine().l2.num_lines() +
                                 machine().l1.num_lines();
  EXPECT_GT(mem.dram_stats().writeback_lines,
            static_cast<std::uint64_t>(lines) - resident - 1000);
  EXPECT_LE(mem.dram_stats().writeback_lines,
            static_cast<std::uint64_t>(lines));
}

TEST(Writeback, DirtyL1EvictionPropagatesToL2NotDram) {
  MachineConfig m = machine();
  MemorySystem mem(m, 1);
  const Addr target = 0x10000;
  mem.demand_load(0, 1, target, 0, false, /*is_store=*/true);
  // Conflict the line out of the L1 only; the L2 still holds it, so the
  // dirty data moves there instead of going off-chip.
  const std::uint64_t l1_sets = m.l1.num_sets();
  for (std::uint64_t i = 1; i <= m.l1.associativity + 1; ++i) {
    mem.demand_load(0, 2, target + i * l1_sets * kLineSize, 1000 * i);
  }
  EXPECT_FALSE(mem.l1(0).contains(line_of(target)));
  EXPECT_TRUE(mem.l2(0).contains(line_of(target)));
  EXPECT_EQ(mem.dram_stats().writeback_lines, 0u);
}

TEST(Writeback, DirtyNtPrefetchedLineRetiresStraightToDram) {
  // PREFETCHNTA + store: the line lives only in the L1; its dirty eviction
  // must go straight off-chip (no lower level holds it).
  MachineConfig m = machine();
  MemorySystem mem(m, 1);
  const Addr target = 0x20000;
  mem.software_prefetch(0, target, PrefetchHint::NTA, 0);
  mem.demand_load(0, 1, target, 5000, false, /*is_store=*/true);
  const std::uint64_t l1_sets = m.l1.num_sets();
  for (std::uint64_t i = 1; i <= m.l1.associativity + 1; ++i) {
    mem.demand_load(0, 2, target + i * l1_sets * kLineSize, 10000 * i);
  }
  EXPECT_EQ(mem.dram_stats().writeback_lines, 1u);
}

TEST(Writeback, WritebacksOccupyChannelBandwidth) {
  DramChannel dram(6.4, 200);  // 10 cycles per line
  dram.writeback_line(0);
  // The next fetch queues behind the writeback transfer.
  EXPECT_EQ(dram.fetch_line(0, TrafficClass::DemandRead), 210u);
  EXPECT_EQ(dram.stats().writeback_lines, 1u);
  EXPECT_EQ(dram.stats().total_lines(), 1u);  // fetched only
}

TEST(Writeback, DslStoreFlagRoundTrips) {
  const workloads::Program p = workloads::parse_program(
      "program s seed=1 reps=1\n"
      "loop 10 {\n"
      "  pc1: stream base=0 stride=64 footprint=1M compute=2 store\n"
      "}\n");
  ASSERT_TRUE(p.loops[0].body[0].is_store);
  const workloads::Program q =
      workloads::parse_program(workloads::print_program(p));
  EXPECT_TRUE(q.loops[0].body[0].is_store);
}

}  // namespace
}  // namespace re::sim
