#include "sim/dram.hh"

#include <gtest/gtest.h>

namespace re::sim {
namespace {

TEST(DramChannel, RejectsNonPositiveBandwidth) {
  EXPECT_THROW(DramChannel(0.0, 100), std::invalid_argument);
  EXPECT_THROW(DramChannel(-1.0, 100), std::invalid_argument);
}

TEST(DramChannel, UnloadedLatency) {
  DramChannel dram(64.0, 200);  // one line per cycle
  EXPECT_EQ(dram.fetch_line(1000, TrafficClass::DemandRead), 1200u);
}

TEST(DramChannel, BackToBackRequestsQueue) {
  DramChannel dram(6.4, 200);  // 10 cycles per 64 B line
  const Cycle t1 = dram.fetch_line(0, TrafficClass::DemandRead);
  const Cycle t2 = dram.fetch_line(0, TrafficClass::DemandRead);
  const Cycle t3 = dram.fetch_line(0, TrafficClass::DemandRead);
  EXPECT_EQ(t1, 200u);
  EXPECT_EQ(t2, 210u);  // waited one transfer slot
  EXPECT_EQ(t3, 220u);
}

TEST(DramChannel, ChannelDrainsWhenIdle) {
  DramChannel dram(6.4, 200);
  dram.fetch_line(0, TrafficClass::DemandRead);
  // Long idle period: the next request sees an unloaded channel.
  EXPECT_EQ(dram.fetch_line(100000, TrafficClass::DemandRead), 100200u);
}

TEST(DramChannel, QueueDelayReflectsBacklog) {
  DramChannel dram(6.4, 200);  // 10 cycles per line
  EXPECT_EQ(dram.queue_delay(0), 0u);
  for (int i = 0; i < 5; ++i) dram.fetch_line(0, TrafficClass::DemandRead);
  EXPECT_EQ(dram.queue_delay(0), 50u);
  EXPECT_EQ(dram.queue_delay(25), 25u);
  EXPECT_EQ(dram.queue_delay(1000), 0u);
}

TEST(DramChannel, TrafficAttributionByClass) {
  DramChannel dram(64.0, 100);
  dram.fetch_line(0, TrafficClass::DemandRead);
  dram.fetch_line(0, TrafficClass::DemandRead);
  dram.fetch_line(0, TrafficClass::SwPrefetchRead);
  dram.fetch_line(0, TrafficClass::HwPrefetchRead);
  const DramStats& stats = dram.stats();
  EXPECT_EQ(stats.demand_lines, 2u);
  EXPECT_EQ(stats.sw_prefetch_lines, 1u);
  EXPECT_EQ(stats.hw_prefetch_lines, 1u);
  EXPECT_EQ(stats.total_lines(), 4u);
  EXPECT_EQ(stats.total_bytes(), 4u * kLineSize);
}

TEST(DramChannel, ResetStatsKeepsTime) {
  DramChannel dram(6.4, 100);
  dram.fetch_line(0, TrafficClass::DemandRead);
  dram.reset_stats();
  EXPECT_EQ(dram.stats().total_lines(), 0u);
  EXPECT_GT(dram.queue_delay(0), 0u);  // occupancy not reset
  dram.reset_time();
  EXPECT_EQ(dram.queue_delay(0), 0u);
}

TEST(DramChannel, FractionalBandwidthRoundsUp) {
  DramChannel dram(2.86, 0);  // 64/2.86 = 22.38 -> 23 cycles
  const Cycle t1 = dram.fetch_line(0, TrafficClass::DemandRead);
  const Cycle t2 = dram.fetch_line(0, TrafficClass::DemandRead);
  EXPECT_EQ(t1, 0u);
  EXPECT_EQ(t2, 23u);
}

// Property: sustained bandwidth never exceeds the configured rate.
class DramBandwidthTest : public ::testing::TestWithParam<double> {};

TEST_P(DramBandwidthTest, SustainedRateBounded) {
  const double bytes_per_cycle = GetParam();
  DramChannel dram(bytes_per_cycle, 150);
  const int lines = 1000;
  Cycle last = 0;
  for (int i = 0; i < lines; ++i) {
    last = dram.fetch_line(0, TrafficClass::DemandRead);
  }
  const double achieved =
      static_cast<double>(lines) * kLineSize / static_cast<double>(last);
  EXPECT_LE(achieved, bytes_per_cycle * 1.05);
  EXPECT_GE(achieved, bytes_per_cycle * 0.80);  // close to peak when saturated
}

INSTANTIATE_TEST_SUITE_P(Rates, DramBandwidthTest,
                         ::testing::Values(1.0, 2.86, 4.59, 8.0, 64.0));

}  // namespace
}  // namespace re::sim
