#include <gtest/gtest.h>

#include "core/insertion.hh"
#include "sim/adaptive.hh"
#include "sim/memory_system.hh"
#include "sim/system.hh"
#include "workloads/program.hh"

namespace re::sim {
namespace {

using workloads::Loop;
using workloads::PrefetchHint;
using workloads::PrefetchOp;
using workloads::Program;
using workloads::StaticInst;
using workloads::StreamPattern;

Program streaming_program(std::uint64_t iterations = 20000) {
  Program p;
  p.name = "overlay-stream";
  StaticInst s;
  s.pc = 1;
  s.pattern = StreamPattern{0, 64, 8 << 20};
  p.loops.push_back(Loop{{s}, iterations});
  return p;
}

/// Agent with a fixed overlay, set up before the run.
class FixedOverlayAgent : public CoreAgent {
 public:
  PlanOverlay overlay_state;

  void on_reference(int, Pc, Addr, Cycle, MemorySystem&) override {}
  const PlanOverlay* overlay(int) const override { return &overlay_state; }
};

TEST(PlanOverlay, LookupAndInstall) {
  PlanOverlay overlay;
  EXPECT_FALSE(overlay.active);
  EXPECT_EQ(overlay.lookup(1), nullptr);
  overlay.install(1, PrefetchOp{256, PrefetchHint::T0});
  EXPECT_TRUE(overlay.active);
  ASSERT_NE(overlay.lookup(1), nullptr);
  EXPECT_EQ(overlay.lookup(1)->distance_bytes, 256);
  EXPECT_EQ(overlay.lookup(2), nullptr);
  overlay.deactivate();
  EXPECT_FALSE(overlay.active);
  EXPECT_EQ(overlay.lookup(1), nullptr);
}

TEST(PlanOverlay, ActiveOverlayIssuesPrefetches) {
  const sim::MachineConfig machine = amd_phenom_ii();
  const Program program = streaming_program();

  FixedOverlayAgent agent;
  agent.overlay_state.install(1, PrefetchOp{512, PrefetchHint::T0});
  const RunResult with = run_single_adaptive(machine, program, false, agent);

  const RunResult without = run_single(machine, program, false);

  EXPECT_GT(with.apps[0].mem.sw_prefetches_issued, 0u);
  EXPECT_EQ(without.apps[0].mem.sw_prefetches_issued, 0u);
  // Timely prefetching of a pure stream must win despite the issue cost.
  EXPECT_LT(with.apps[0].cycles, without.apps[0].cycles);
}

TEST(PlanOverlay, InactiveOverlayFallsBackToBakedInPlans) {
  const sim::MachineConfig machine = amd_phenom_ii();
  const Program program = streaming_program();
  const Program optimized = core::insert_prefetches(
      program, {core::PrefetchPlan{1, 512, PrefetchHint::T0}});

  FixedOverlayAgent agent;  // inactive overlay
  const RunResult run = run_single_adaptive(machine, optimized, false, agent);
  EXPECT_GT(run.apps[0].mem.sw_prefetches_issued, 0u);

  // And a null agent behaves exactly like run_single.
  const RunResult plain = run_single(machine, optimized, false);
  EXPECT_EQ(run.apps[0].cycles, plain.apps[0].cycles);
  EXPECT_EQ(run.apps[0].mem.sw_prefetches_issued,
            plain.apps[0].mem.sw_prefetches_issued);
}

TEST(PlanOverlay, ActiveEmptyOverlaySuppressesBakedInPlans) {
  const sim::MachineConfig machine = amd_phenom_ii();
  const Program optimized = core::insert_prefetches(
      streaming_program(), {core::PrefetchPlan{1, 512, PrefetchHint::T0}});

  FixedOverlayAgent agent;
  agent.overlay_state.active = true;  // active but empty = suppress all
  const RunResult run = run_single_adaptive(machine, optimized, false, agent);
  EXPECT_EQ(run.apps[0].mem.sw_prefetches_issued, 0u);
}

TEST(PlanOverlay, ActiveOverlayReplacesBakedInPlansWholesale) {
  const sim::MachineConfig machine = amd_phenom_ii();
  // Program bakes in pc 1; overlay only names pc 1 with a different
  // distance. The overlay's distance must be the one issued.
  const Program optimized = core::insert_prefetches(
      streaming_program(), {core::PrefetchPlan{1, 64, PrefetchHint::T0}});

  FixedOverlayAgent near_agent, far_agent;
  near_agent.overlay_state.install(1, PrefetchOp{64, PrefetchHint::T0});
  far_agent.overlay_state.install(1, PrefetchOp{1024, PrefetchHint::T0});
  const RunResult near_run =
      run_single_adaptive(machine, optimized, false, near_agent);
  const RunResult far_run =
      run_single_adaptive(machine, optimized, false, far_agent);

  // Identical issue counts (same pc executes the same number of times)...
  EXPECT_EQ(near_run.apps[0].mem.sw_prefetches_issued,
            far_run.apps[0].mem.sw_prefetches_issued);
  // ...but a one-line-ahead prefetch is mostly late while eight lines ahead
  // hides the latency, so the runs must differ in time.
  EXPECT_NE(near_run.apps[0].cycles, far_run.apps[0].cycles);
}

}  // namespace
}  // namespace re::sim
