// Shared test utilities.
//
// Every randomized test derives its seed from test_seed() instead of an
// ad-hoc per-file constant, so one environment variable reproduces (or
// stress-sweeps) any stochastic failure:
//
//   RE_TEST_SEED=1337 ctest -L unit
//
// When a test fails, the active seed is printed next to the failure so the
// exact run can be replayed.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace re::testing {

/// The seed every randomized test should use: RE_TEST_SEED if set and
/// parseable, else 42.
inline std::uint64_t test_seed() {
  if (const char* env = std::getenv("RE_TEST_SEED")) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 0);
    if (end != env && *end == '\0') {
      return static_cast<std::uint64_t>(value);
    }
  }
  return 42;
}

namespace internal {

/// Prints the active seed after any failed test, so the log always carries
/// the reproduction command.
class SeedReporter : public ::testing::EmptyTestEventListener {
  void OnTestEnd(const ::testing::TestInfo& info) override {
    if (info.result() != nullptr && info.result()->Failed()) {
      std::printf("[   SEED   ] reproduce with RE_TEST_SEED=%llu\n",
                  static_cast<unsigned long long>(test_seed()));
    }
  }
};

// Registered during static initialization: gtest's listener list exists
// before InitGoogleTest, and an inline variable registers exactly once per
// binary however many translation units include this header.
inline const bool seed_reporter_registered = [] {
  ::testing::UnitTest::GetInstance()->listeners().Append(new SeedReporter);
  return true;
}();

}  // namespace internal
}  // namespace re::testing
