// Work-stealing scheduler tests: the steal backend must honor the exact
// contract the fork-join backend set — exactly-once dispatch, byte-equal
// results at any worker count, inline nesting, drain-style cancellation,
// and lowest-index error selection — plus the steal-specific machinery:
// epoch-tagged claims and resource-hint prefetching.
#include "engine/scheduler.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/executor.hh"
#include "testutil.hh"

namespace re::engine {
namespace {

Executor make_steal(int jobs, std::uint64_t seed = kDefaultExecutorSeed) {
  return Executor(jobs, seed, SchedulerBackend::kSteal);
}

TEST(SchedulerBackendNames, RoundTrip) {
  EXPECT_STREQ(scheduler_backend_name(SchedulerBackend::kForkJoin),
               "forkjoin");
  EXPECT_STREQ(scheduler_backend_name(SchedulerBackend::kSteal), "steal");
  SchedulerBackend parsed = SchedulerBackend::kForkJoin;
  EXPECT_TRUE(parse_scheduler_backend("steal", &parsed));
  EXPECT_EQ(parsed, SchedulerBackend::kSteal);
  EXPECT_TRUE(parse_scheduler_backend("forkjoin", &parsed));
  EXPECT_EQ(parsed, SchedulerBackend::kForkJoin);
  EXPECT_FALSE(parse_scheduler_backend("fifo", &parsed));
  EXPECT_EQ(parsed, SchedulerBackend::kForkJoin) << "*out touched on failure";
}

TEST(StealScheduler, VisitsEveryUnitExactlyOnce) {
  // Larger than several deque blocks, not a multiple of any worker count,
  // so refills, steals and the tail all get exercised.
  constexpr std::size_t kUnits = 5 * kStealDequeCapacity + 17;
  for (const int jobs : {1, 2, 7, 16}) {
    std::vector<std::atomic<int>> visits(kUnits);
    const Executor executor = make_steal(jobs);
    executor.for_each(kUnits, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < kUnits; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "unit " << i << " at jobs " << jobs;
    }
  }
}

TEST(StealScheduler, ResultsMatchForkJoinAndSerialAtAnyJobs) {
  // The property test of the determinism contract: every (backend, jobs)
  // combination produces the byte-identical result vector.
  const auto unit = [](std::size_t i) {
    return std::to_string(i * 31 + 7) + "/" + std::to_string(i % 5);
  };
  const std::vector<std::string> expected = Executor(1).map(333, unit);
  for (const int jobs : {1, 2, 7, 16}) {
    EXPECT_EQ(make_steal(jobs).map(333, unit), expected) << "jobs " << jobs;
    EXPECT_EQ(Executor(jobs).map(333, unit), expected) << "jobs " << jobs;
  }
}

TEST(StealScheduler, SeedNeverAffectsResults) {
  const auto unit = [](std::size_t i) { return i * i; };
  const Executor a = make_steal(7, /*seed=*/1);
  const Executor b = make_steal(7, /*seed=*/0xDEADBEEF);
  EXPECT_EQ(a.map(200, unit), b.map(200, unit));
}

TEST(StealScheduler, StealStormIsExactlyOnce) {
  // Steal storm: tiny units, many workers, many rounds — maximal owner /
  // thief contention on the claim words. Any double-run or drop shows up
  // in the per-unit counters.
  constexpr std::size_t kUnits = 2048;
  const Executor executor = make_steal(16);
  for (int round = 0; round < 8; ++round) {
    std::vector<std::atomic<int>> visits(kUnits);
    std::atomic<std::uint64_t> sum{0};
    executor.for_each(kUnits, [&](std::size_t i) {
      ++visits[i];
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kUnits; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "unit " << i << " round " << round;
    }
    EXPECT_EQ(sum.load(), kUnits * (kUnits - 1) / 2) << "round " << round;
  }
}

TEST(StealScheduler, NestedFanOutRunsInlineOnWorkers) {
  const Executor outer = make_steal(4);
  const Executor inner = make_steal(4);
  std::atomic<int> nested_on_worker{0};
  const std::vector<int> sums = outer.map(8, [&](std::size_t i) {
    int sum = 0;
    std::vector<int> parts(16, 0);
    inner.for_each(16, [&](std::size_t j) {
      if (Executor::in_worker()) ++nested_on_worker;
      parts[j] = static_cast<int>(i * 100 + j);
    });
    for (const int p : parts) sum += p;
    return sum;
  });
  for (std::size_t i = 0; i < sums.size(); ++i) {
    int expected = 0;
    for (int j = 0; j < 16; ++j) expected += static_cast<int>(i) * 100 + j;
    EXPECT_EQ(sums[i], expected);
  }
  EXPECT_GT(nested_on_worker.load(), 0);
}

TEST(StealScheduler, MidStealCancellationDrainsInFlight) {
  // A token armed mid-fan-out stops new units from starting; units already
  // running finish (the counter never moves after the throw propagates).
  for (const int jobs : {1, 2, 7, 16}) {
    const Executor executor = make_steal(jobs);
    CancelToken cancel;
    std::atomic<int> ran{0};
    EXPECT_THROW(executor.for_each(
                     1024,
                     [&](std::size_t) {
                       if (++ran == 5) cancel.request();
                     },
                     &cancel),
                 Cancelled)
        << "jobs " << jobs;
    const int after_throw = ran.load();
    EXPECT_GE(after_throw, 5) << "jobs " << jobs;
    EXPECT_LT(after_throw, 1024) << "jobs " << jobs;
    EXPECT_EQ(ran.load(), after_throw) << "jobs " << jobs;
  }
}

TEST(StealScheduler, LowestIndexErrorOutranksCancelled) {
  // Property test at every contract job count: when units throw *and* the
  // token arms, the winner is always a unit error — and at jobs=1 (fully
  // ordered claims) it is exactly the lowest-indexed thrower.
  for (const int jobs : {1, 2, 7, 16}) {
    const Executor executor = make_steal(jobs);
    CancelToken cancel;
    try {
      executor.for_each(
          256,
          [&](std::size_t i) {
            if (i == 9 || i == 40 || i == 200) {
              cancel.request();
              throw std::runtime_error("unit " + std::to_string(i));
            }
          },
          &cancel);
      FAIL() << "expected a rethrow at jobs " << jobs;
    } catch (const Cancelled&) {
      FAIL() << "cancellation masked the unit error at jobs " << jobs;
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_TRUE(what == "unit 9" || what == "unit 40" || what == "unit 200")
          << what << " at jobs " << jobs;
    }
  }
  // Serial claims run the full permutation order deterministically, so the
  // lowest-indexed thrower is reproducible run to run.
  const Executor serial = make_steal(1);
  try {
    serial.for_each(256, [](std::size_t i) {
      if (i == 9 || i == 40 || i == 200) {
        throw std::runtime_error("unit " + std::to_string(i));
      }
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "unit 9");
  }
}

TEST(StealScheduler, EpochsAreMonotonePerFanOut) {
  const Executor executor = make_steal(4);
  executor.for_each(64, [](std::size_t) {});
  const std::uint64_t first = executor.last_epoch();
  EXPECT_GT(first, 0u);
  executor.for_each(64, [](std::size_t) {});
  EXPECT_GT(executor.last_epoch(), first);
  EXPECT_GE(current_epoch(), executor.last_epoch());
}

TEST(ResourceHints, PrefetchCountsLinesAndRespectsCap) {
  std::vector<std::uint64_t> buffer(1024, 1);
  ResourceHint t0{buffer.data(), 128, PrefetchMode::kT0};
  EXPECT_EQ(prefetch_resource(t0), 128 / kCacheLineBytes);
  ResourceHint nta{buffer.data(), 100, PrefetchMode::kNTA};
  EXPECT_EQ(prefetch_resource(nta), 2u);  // 100 bytes spans 2 lines
  ResourceHint oversized{buffer.data(), std::size_t{1} << 20,
                         PrefetchMode::kT0};
  EXPECT_EQ(prefetch_resource(oversized), kMaxPrefetchBytes / kCacheLineBytes);
  EXPECT_EQ(prefetch_resource(ResourceHint{}), 0u);
  ResourceHint none{buffer.data(), 64, PrefetchMode::kNone};
  EXPECT_EQ(prefetch_resource(none), 0u);
}

TEST(ResourceHints, DispatcherCountsAnnotatedUnits) {
  std::vector<int> data(4096, 7);
  const HintFn hints = [&](std::size_t i) {
    // Annotate only even units; odd units return an empty hint.
    if (i % 2 != 0) return ResourceHint{};
    return ResourceHint{data.data(), data.size() * sizeof(int),
                        PrefetchMode::kT0};
  };
  for (const SchedulerBackend backend :
       {SchedulerBackend::kForkJoin, SchedulerBackend::kSteal}) {
    const Executor executor(4, kDefaultExecutorSeed, backend);
    std::atomic<std::uint64_t> sum{0};
    executor.for_each(
        256, [&](std::size_t i) { sum.fetch_add(i); }, nullptr, &hints);
    EXPECT_EQ(sum.load(), 256u * 255u / 2u);
    EXPECT_EQ(executor.prefetch_hints(), 128u)
        << scheduler_backend_name(backend);
  }
}

TEST(ResourceHints, HintsNeverChangeResults) {
  std::vector<std::uint64_t> data(512);
  std::iota(data.begin(), data.end(), 0);
  const auto unit = [&](std::size_t i) { return data[i] * 3; };
  const HintFn hints = [&](std::size_t i) {
    return ResourceHint{&data[i], sizeof(data[i]), PrefetchMode::kNTA};
  };
  const std::vector<std::uint64_t> plain = Executor(1).map(512, unit);
  for (const SchedulerBackend backend :
       {SchedulerBackend::kForkJoin, SchedulerBackend::kSteal}) {
    for (const int jobs : {1, 2, 7}) {
      const Executor executor(jobs, kDefaultExecutorSeed, backend);
      EXPECT_EQ(executor.map(512, unit, nullptr, &hints), plain)
          << scheduler_backend_name(backend) << " jobs " << jobs;
    }
  }
}

TEST(StealScheduler, StealsAreCountedOnlyUnderStealBackend) {
  const Executor forkjoin(8);
  forkjoin.for_each(512, [](std::size_t) {});
  EXPECT_EQ(forkjoin.steals(), 0u);
  // Uneven units make victims' deques worth robbing; steals may still be
  // zero on a narrow host, so only the forkjoin-is-zero half is a hard
  // assertion.
  const Executor steal = make_steal(8);
  steal.for_each(512, [](std::size_t i) {
    volatile std::uint64_t x = 0;
    for (std::size_t k = 0; k < (i % 7) * 50; ++k) x += k;
  });
  SUCCEED();
}

TEST(DescribeExecutor, NamesEveryConfigField) {
  const Executor executor = make_steal(5, /*seed=*/0xABC);
  const std::string line = describe_executor(executor);
  EXPECT_NE(line.find("jobs=5"), std::string::npos) << line;
  EXPECT_NE(line.find("seed=0x0000000000000abc"), std::string::npos) << line;
  EXPECT_NE(line.find("scheduler=steal"), std::string::npos) << line;
  EXPECT_NE(line.find("deque=64"), std::string::npos) << line;
  EXPECT_NE(line.find("numa="), std::string::npos) << line;
}

}  // namespace
}  // namespace re::engine
