// Analysis-engine tests: the determinism property (any stage graph yields
// byte-identical reports at any worker count), Δ precedence, the knob
// builder, artifact-store reuse, and thread-safety stress for the shared
// plan cache and concurrent windowed solves (run under RE_SANITIZE=thread
// by the tsan lane in tools/check.sh).
#include "engine/pipeline.hh"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "analysis/experiments.hh"
#include "core/pipeline.hh"
#include "engine/delta.hh"
#include "engine/executor.hh"
#include "engine/options.hh"
#include "engine/store.hh"
#include "testutil.hh"
#include "workloads/suite.hh"

namespace re::engine {
namespace {

// -- determinism property -------------------------------------------------

/// Every graph entry point, serialized at `jobs` workers.
std::string all_graphs_fingerprint(const workloads::Program& program,
                                   const sim::MachineConfig& machine,
                                   int jobs) {
  const Executor executor(jobs);
  ArtifactStore store;
  const EngineContext ctx{&executor, &store};

  std::string out;
  out += serialize_report(run_optimize(program, machine, {}, ctx));
  out += serialize_report(run_stride_centric(program, machine, {}, ctx));
  const core::Profile profile =
      core::profile_program(program, core::SamplerConfig{});
  out += serialize_report(
      run_optimize_with_profile(program, profile, machine, {}, ctx));
  return out;
}

TEST(EngineDeterminism, ByteIdenticalReportsAtAnyWorkerCount) {
  for (const std::string& name : workloads::suite_names()) {
    const workloads::Program program = workloads::make_benchmark(name);
    for (const sim::MachineConfig& machine :
         {sim::amd_phenom_ii(), sim::intel_sandybridge()}) {
      const std::string serial = all_graphs_fingerprint(program, machine, 1);
      ASSERT_FALSE(serial.empty());
      for (const int jobs : {2, 7, 16}) {
        EXPECT_EQ(all_graphs_fingerprint(program, machine, jobs), serial)
            << name << " on " << machine.name << " at jobs " << jobs;
      }
    }
  }
}

TEST(EngineDeterminism, ContextlessRunMatchesSerialExecutor) {
  // The default EngineContext (no executor, no store) is the same code path
  // as a one-worker executor with a fresh store.
  const workloads::Program program = workloads::make_benchmark("libquantum");
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const std::string contextless =
      serialize_report(run_optimize(program, machine, {}));
  EXPECT_EQ(contextless,
            serialize_report(run_optimize(program, machine, {},
                                          EngineContext{nullptr, nullptr})));
  const Executor executor(1);
  ArtifactStore store;
  EXPECT_EQ(contextless,
            serialize_report(run_optimize(program, machine, {},
                                          EngineContext{&executor, &store})));
}

TEST(EngineDeterminism, ArtifactStoreReuseAcrossRunsIsInvisible) {
  // A store warmed by other programs (stale interned PCs, used arenas) must
  // never change results — only allocation behavior.
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const Executor executor(2);
  ArtifactStore warm;
  const EngineContext ctx{&executor, &warm};
  std::vector<std::string> first_pass;
  for (const std::string& name : workloads::suite_names()) {
    first_pass.push_back(serialize_report(
        run_optimize(workloads::make_benchmark(name), machine, {}, ctx)));
  }
  // Second pass through the now-warm store, in reverse order.
  for (std::size_t i = workloads::suite_names().size(); i-- > 0;) {
    const std::string& name = workloads::suite_names()[i];
    EXPECT_EQ(serialize_report(run_optimize(workloads::make_benchmark(name),
                                            machine, {}, ctx)),
              first_pass[i])
        << name;
  }
}

// -- stage graph self-description -----------------------------------------

TEST(StageGraph, DescribeNamesEveryPipelineStage) {
  const std::string description = optimize_graph().describe();
  for (const char* stage : {"sample", "validate", "delta", "statstack",
                            "mddli", "stride", "bypass", "insert"}) {
    EXPECT_NE(description.find(stage), std::string::npos)
        << "missing stage: " << stage << "\n"
        << description;
  }
  EXPECT_EQ(optimize_graph().stages().size(), 8u);
  EXPECT_FALSE(stride_centric_graph().describe().empty());
  EXPECT_FALSE(estimator_graph().describe().empty());
}

// -- Δ resolution ----------------------------------------------------------

TEST(Delta, PrecedenceAssumedOverMeasuredOverBaselineSim) {
  int baseline_calls = 0;
  const auto baseline = [&] {
    ++baseline_calls;
    return 7.0;
  };

  const DeltaEstimate assumed = resolve_delta(3.0, 5.0, baseline);
  EXPECT_EQ(assumed.source, DeltaSource::kAssumed);
  EXPECT_DOUBLE_EQ(assumed.cycles_per_memop, 3.0);

  const DeltaEstimate measured = resolve_delta(0.0, 5.0, baseline);
  EXPECT_EQ(measured.source, DeltaSource::kMeasured);
  EXPECT_DOUBLE_EQ(measured.cycles_per_memop, 5.0);

  // The expensive baseline simulation is invoked lazily: only now.
  EXPECT_EQ(baseline_calls, 0);
  const DeltaEstimate sim = resolve_delta(0.0, 0.0, baseline);
  EXPECT_EQ(sim.source, DeltaSource::kBaselineSim);
  EXPECT_DOUBLE_EQ(sim.cycles_per_memop, 7.0);
  EXPECT_EQ(baseline_calls, 1);
}

TEST(Delta, EwmaIgnoresEmptyWindowsAndTracksChanges) {
  DeltaEwma ewma;
  EXPECT_DOUBLE_EQ(ewma.value(), 0.0);
  ewma.observe(0.0);   // empty window measures nothing
  ewma.observe(-1.0);  // nonsense measures nothing
  EXPECT_DOUBLE_EQ(ewma.value(), 0.0);
  ewma.observe(4.0);  // first observation seeds the estimate
  EXPECT_DOUBLE_EQ(ewma.value(), 4.0);
  ewma.observe(8.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 0.7 * 4.0 + 0.3 * 8.0);
}

// -- knob plumbing ---------------------------------------------------------

TEST(Knobs, DefaultsMatchTheStructsTheyBuild) {
  const AnalysisKnobs knobs;
  const core::SamplerConfig sampler = make_sampler_config(knobs);
  const core::SamplerConfig sampler_defaults{};
  EXPECT_EQ(sampler.sample_period, sampler_defaults.sample_period);
  EXPECT_EQ(sampler.seed, sampler_defaults.seed);

  const core::OptimizerOptions options = make_optimizer_options(knobs);
  const core::OptimizerOptions defaults;
  EXPECT_EQ(options.enable_non_temporal, defaults.enable_non_temporal);
  EXPECT_EQ(options.profile_max_refs, defaults.profile_max_refs);
  EXPECT_DOUBLE_EQ(options.assumed_cycles_per_memop,
                   defaults.assumed_cycles_per_memop);
  EXPECT_DOUBLE_EQ(options.measured_cycles_per_memop,
                   defaults.measured_cycles_per_memop);
}

TEST(Knobs, BuilderCarriesEveryKnob) {
  AnalysisKnobs knobs;
  knobs.sample_period = 123;
  knobs.sample_seed = 77;
  knobs.profile_max_refs = 5000;
  knobs.enable_non_temporal = false;
  knobs.assumed_cycles_per_memop = 2.5;
  knobs.measured_cycles_per_memop = 3.5;

  const core::SamplerConfig sampler = make_sampler_config(knobs);
  EXPECT_EQ(sampler.sample_period, 123u);
  EXPECT_EQ(sampler.seed, 77u);

  const core::OptimizerOptions options = make_optimizer_options(knobs);
  EXPECT_EQ(options.profile_max_refs, 5000u);
  EXPECT_FALSE(options.enable_non_temporal);
  EXPECT_DOUBLE_EQ(options.assumed_cycles_per_memop, 2.5);
  EXPECT_DOUBLE_EQ(options.measured_cycles_per_memop, 3.5);
}

TEST(Knobs, EffectiveLlcFansIntoMddliAndBypass) {
  AnalysisKnobs knobs;
  knobs.llc_effective_bytes = 256 << 10;
  const core::OptimizerOptions options = make_optimizer_options(knobs);
  EXPECT_EQ(options.mddli.llc_effective_bytes, 256u << 10);
  EXPECT_EQ(options.bypass.llc_effective_bytes, 256u << 10);

  // Zero (the default) preserves the single-core assumption: both passes
  // fall back to the machine's full LLC.
  const core::OptimizerOptions defaults = make_optimizer_options({});
  EXPECT_EQ(defaults.mddli.llc_effective_bytes, 0u);
  EXPECT_EQ(defaults.bypass.llc_effective_bytes, 0u);
}

TEST(Knobs, DescribeListsEveryFieldOnce) {
  const std::string audit = describe_knobs(AnalysisKnobs{});
  for (const char* field :
       {"sample_period", "sample_seed", "profile_max_refs",
        "enable_non_temporal", "assumed_cycles_per_memop",
        "measured_cycles_per_memop", "llc_effective_bytes", "mddli.",
        "stride.", "bypass."}) {
    EXPECT_NE(audit.find(field), std::string::npos)
        << "missing knob: " << field << "\n"
        << audit;
  }
}

// -- artifact store --------------------------------------------------------

TEST(ArtifactStore, InternerIsStableAndClearKeepsIds) {
  ArtifactStore store;
  const std::uint32_t a = store.pc_table().intern(100);
  const std::uint32_t b = store.pc_table().intern(200);
  EXPECT_NE(a, b);
  EXPECT_EQ(store.pc_table().intern(100), a);  // idempotent
  EXPECT_EQ(store.pc_table().index_of(100), a);
  EXPECT_EQ(store.pc_table().pc_of(a), 100u);

  store.reuse_groups(store.pc_table().size())[a].push_back(7);
  store.touched_pcs().push_back(a);
  store.clear();
  // clear() empties per-solve scratch but keeps interned ids and capacity.
  EXPECT_TRUE(store.reuse_groups(store.pc_table().size())[a].empty());
  EXPECT_EQ(store.pc_table().intern(200), b);
}

// -- thread-safety stress (TSan lane) --------------------------------------

TEST(EngineStress, ConcurrentWindowedSolvesAreIndependent) {
  // 64 concurrent windowed solves: 16 threads x 4 solves, each with its own
  // ArtifactStore (the sharing unit is the store, never the solve). Under
  // RE_SANITIZE=thread this is the data-race oracle for the whole engine
  // path (sampling, StatStack arena reuse, stride fan-out, insertion).
  // Alternating threads use the work-stealing backend, so owner/thief
  // claim races run under the same oracle (the steal storm proper lives in
  // scheduler_test.cc).
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const std::vector<std::string> names = workloads::suite_names();
  const workloads::Program program = workloads::make_benchmark("libquantum");
  const std::string expected =
      serialize_report(run_optimize(program, machine, {}));

  constexpr int kThreads = 16;
  constexpr int kSolvesPerThread = 4;
  std::vector<std::string> mismatches(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const SchedulerBackend backend = t % 2 == 0
                                           ? SchedulerBackend::kForkJoin
                                           : SchedulerBackend::kSteal;
      const Executor executor(2, kDefaultExecutorSeed, backend);
      ArtifactStore store;
      const EngineContext ctx{&executor, &store};
      for (int s = 0; s < kSolvesPerThread; ++s) {
        const std::string got =
            serialize_report(run_optimize(program, machine, {}, ctx));
        if (got != expected) {
          mismatches[t] = "thread " + std::to_string(t) + " solve " +
                          std::to_string(s) + " diverged";
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& m : mismatches) EXPECT_EQ(m, "");
}

TEST(EngineStress, PlanCacheComputesEachKeyOnceUnderContention) {
  // Many threads hammer the shared PlanCache with overlapping keys; every
  // returned reference must describe the same plans, and distinct keys must
  // not serialize behind one another (call_once is per entry).
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  analysis::PlanCache cache;
  const std::vector<std::string> names = workloads::suite_names();
  const std::vector<analysis::Policy> policies = {
      analysis::Policy::Software, analysis::Policy::SoftwareNT,
      analysis::Policy::StrideCentric};

  // Expected plan counts from a private serial cache.
  analysis::PlanCache reference;
  std::vector<std::size_t> expected;
  for (const std::string& name : names) {
    for (const analysis::Policy policy : policies) {
      expected.push_back(reference.report(machine, name, policy).plans.size());
    }
  }

  constexpr int kThreads = 8;
  std::vector<std::string> mismatches(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::size_t k = 0;
      for (const std::string& name : names) {
        for (const analysis::Policy policy : policies) {
          const auto& report = cache.report(machine, name, policy);
          if (report.plans.size() != expected[k]) {
            mismatches[t] = name + ": wrong plan count";
            return;
          }
          ++k;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& m : mismatches) EXPECT_EQ(m, "");
}

}  // namespace
}  // namespace re::engine
