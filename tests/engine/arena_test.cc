// SlabArena / ArenaAllocator tests: bump allocation, alignment, slab
// growth and reuse across reset(), placement resolution against the
// host's (possibly absent) NUMA topology, and the ArtifactStore re-backing
// — group buffers live in the store's arena and keep their capacity
// across clear().
#include "engine/arena.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "engine/store.hh"
#include "testutil.hh"

namespace re::engine {
namespace {

TEST(NumaTopology, DetectsAtLeastOneNode) {
  EXPECT_GE(NumaTopology::cached().nodes, 1);
  EXPECT_EQ(NumaTopology::cached().nodes, NumaTopology::detect().nodes);
}

TEST(SlabArena, AutoResolvesAgainstTopology) {
  const SlabArena arena(ArenaPlacement::kAuto);
  if (NumaTopology::cached().nodes > 1) {
    EXPECT_EQ(arena.placement(), ArenaPlacement::kInterleaved);
  } else {
    EXPECT_EQ(arena.placement(), ArenaPlacement::kPlain);
  }
}

TEST(SlabArena, InterleaveFallsBackToPlainWithoutNuma) {
  const SlabArena arena(ArenaPlacement::kInterleaved);
  if (NumaTopology::cached().nodes < 2) {
    EXPECT_EQ(arena.placement(), ArenaPlacement::kPlain);
    EXPECT_FALSE(arena.numa_bound());
  } else {
    EXPECT_EQ(arena.placement(), ArenaPlacement::kInterleaved);
  }
}

TEST(SlabArena, PlacementNamesAreStable) {
  EXPECT_STREQ(placement_name(ArenaPlacement::kAuto), "auto");
  EXPECT_STREQ(placement_name(ArenaPlacement::kPlain), "plain");
  EXPECT_STREQ(placement_name(ArenaPlacement::kInterleaved), "interleave");
  EXPECT_STREQ(placement_name(ArenaPlacement::kWorkerLocal), "local");
}

TEST(SlabArena, AllocationsAreAlignedAndWritable) {
  SlabArena arena(ArenaPlacement::kPlain);
  for (const std::size_t align : {std::size_t{1}, std::size_t{8},
                                  std::size_t{64}, std::size_t{256}}) {
    void* p = arena.allocate(100, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align " << align;
    std::memset(p, 0xAB, 100);  // must be real, writable memory
  }
  EXPECT_GE(arena.bytes_used(), 400u);
}

TEST(SlabArena, OversizedRequestGetsADedicatedSlab) {
  SlabArena arena(ArenaPlacement::kPlain, /*slab_bytes=*/4096);
  void* small = arena.allocate(64, 8);
  void* big = arena.allocate(1 << 20, 64);
  ASSERT_NE(small, nullptr);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0, 1 << 20);
  EXPECT_GE(arena.slab_count(), 2u);
  EXPECT_GE(arena.bytes_reserved(), std::size_t{1} << 20);
}

TEST(SlabArena, ResetReusesSlabsInsteadOfGrowing) {
  SlabArena arena(ArenaPlacement::kPlain, /*slab_bytes=*/4096);
  for (int i = 0; i < 8; ++i) arena.allocate(1024, 8);
  const std::size_t slabs_after_warmup = arena.slab_count();
  const std::size_t reserved = arena.bytes_reserved();
  for (int round = 0; round < 10; ++round) {
    arena.reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    for (int i = 0; i < 8; ++i) arena.allocate(1024, 8);
  }
  EXPECT_EQ(arena.slab_count(), slabs_after_warmup);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaAllocator, BacksStdVectors) {
  SlabArena arena(ArenaPlacement::kPlain);
  ArenaVector<std::uint64_t> v{ArenaAllocator<std::uint64_t>(&arena)};
  for (std::uint64_t i = 0; i < 1000; ++i) v.push_back(i * 3);
  for (std::uint64_t i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i * 3);
  EXPECT_GE(arena.bytes_used(), 1000 * sizeof(std::uint64_t));

  // Allocator equality follows the arena identity.
  SlabArena other(ArenaPlacement::kPlain);
  EXPECT_TRUE(ArenaAllocator<int>(&arena) == ArenaAllocator<int>(&arena));
  EXPECT_TRUE(ArenaAllocator<int>(&arena) != ArenaAllocator<int>(&other));
}

TEST(ArtifactStore, GroupBuffersLiveInTheStoreArena) {
  ArtifactStore store;
  auto& groups = store.reuse_groups(4);
  ASSERT_EQ(groups.size(), 4u);
  for (int round = 0; round < 3; ++round) {
    for (std::size_t id = 0; id < groups.size(); ++id) {
      store.touched_pcs().push_back(static_cast<std::uint32_t>(id));
      for (int k = 0; k < 100; ++k) {
        groups[id].push_back(static_cast<RefCount>(k));
      }
    }
    EXPECT_GT(store.arena().bytes_used(), 0u) << "round " << round;
    store.clear();
    for (const auto& g : store.reuse_groups(4)) {
      EXPECT_TRUE(g.empty());
      EXPECT_GE(g.capacity(), 100u);  // capacity survives clear()
    }
  }
}

TEST(ArtifactStore, GrowingGroupCountKeepsEarlierBuffers) {
  ArtifactStore store;
  store.reuse_groups(2)[1].push_back(RefCount{42});
  auto& groups = store.reuse_groups(6);
  ASSERT_EQ(groups.size(), 6u);
  ASSERT_EQ(groups[1].size(), 1u);
  EXPECT_EQ(groups[1][0], RefCount{42});
}

}  // namespace
}  // namespace re::engine
