// Deterministic-executor unit tests: ordered reduction, seeded
// work-splitting that never leaks into results, inline nesting, and
// deterministic exception propagation.
#include "engine/executor.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "testutil.hh"

namespace re::engine {
namespace {

TEST(Executor, JobsClampedToAtLeastOne) {
  EXPECT_EQ(Executor(0).jobs(), 1);
  EXPECT_EQ(Executor(-3).jobs(), 1);
  EXPECT_EQ(Executor(4).jobs(), 4);
}

TEST(Executor, ForEachVisitsEveryUnitExactlyOnce) {
  for (const int jobs : {1, 2, 7, 16}) {
    constexpr std::size_t kUnits = 257;  // not a multiple of any worker count
    std::vector<std::atomic<int>> visits(kUnits);
    const Executor executor(jobs);
    executor.for_each(kUnits, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < kUnits; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "unit " << i << " at jobs " << jobs;
    }
  }
}

TEST(Executor, MapReturnsResultsInIndexOrder) {
  const auto unit = [](std::size_t i) { return i * i + 1; };
  const Executor serial(1);
  const std::vector<std::size_t> expected = serial.map(100, unit);
  for (const int jobs : {2, 7, 16}) {
    const Executor executor(jobs);
    EXPECT_EQ(executor.map(100, unit), expected) << "jobs " << jobs;
  }
}

TEST(Executor, SeedNeverAffectsResults) {
  const auto unit = [](std::size_t i) { return std::to_string(i * 3); };
  const Executor a(4, /*seed=*/1);
  const Executor b(4, /*seed=*/0xDEADBEEF);
  EXPECT_EQ(a.map(64, unit), b.map(64, unit));
}

TEST(Executor, SerialRethrowsFirstExceptionInIndexOrder) {
  const Executor executor(1);
  try {
    executor.for_each(100, [](std::size_t i) {
      if (i == 17 || i == 42 || i == 91) {
        throw std::runtime_error("unit " + std::to_string(i));
      }
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "unit 17");
  }
}

TEST(Executor, SingleFailingUnitIsRethrownAtAnyJobs) {
  for (const int jobs : {2, 7, 16}) {
    const Executor executor(jobs);
    try {
      executor.for_each(100, [](std::size_t i) {
        if (i == 42) throw std::runtime_error("unit 42");
      });
      FAIL() << "expected a rethrow at jobs " << jobs;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "unit 42") << "jobs " << jobs;
    }
  }
}

TEST(Executor, ParallelRethrowComesFromAFailingUnit) {
  // After the first failure the pool drains fast (not-yet-started units are
  // skipped), so the guarantee is: the rethrown exception belongs to the
  // lowest-indexed unit *that threw* — always one of the failing units.
  const Executor executor(7);
  try {
    executor.for_each(100, [](std::size_t i) {
      if (i == 17 || i == 42 || i == 91) {
        throw std::runtime_error("unit " + std::to_string(i));
      }
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_TRUE(what == "unit 17" || what == "unit 42" || what == "unit 91")
        << what;
  }
}

TEST(Executor, NestedFanOutRunsInlineOnWorkers) {
  const Executor outer(4);
  const Executor inner(4);
  std::atomic<int> nested_on_worker{0};
  const std::vector<int> sums = outer.map(8, [&](std::size_t i) {
    // A nested fan-out must not deadlock the fixed pool; it runs inline on
    // the claiming worker.
    int sum = 0;
    std::vector<int> parts(16, 0);
    inner.for_each(16, [&](std::size_t j) {
      if (Executor::in_worker()) ++nested_on_worker;
      parts[j] = static_cast<int>(i * 100 + j);
    });
    for (const int p : parts) sum += p;
    return sum;
  });
  for (std::size_t i = 0; i < sums.size(); ++i) {
    int expected = 0;
    for (int j = 0; j < 16; ++j) expected += static_cast<int>(i) * 100 + j;
    EXPECT_EQ(sums[i], expected);
  }
  EXPECT_GT(nested_on_worker.load(), 0);
}

TEST(Executor, MapHandlesNonDefaultConstructibleResults) {
  // map() must not require R() — results land in optional slots and are
  // moved out in index order.
  struct Tagged {
    explicit Tagged(std::size_t v) : value(v) {}
    Tagged(const Tagged&) = delete;
    Tagged& operator=(const Tagged&) = delete;
    Tagged(Tagged&&) = default;
    Tagged& operator=(Tagged&&) = default;
    std::size_t value;
  };
  static_assert(!std::is_default_constructible_v<Tagged>);
  for (const int jobs : {1, 2, 7, 16}) {
    const Executor executor(jobs);
    const std::vector<Tagged> results =
        executor.map(50, [](std::size_t i) { return Tagged(i * 2 + 1); });
    ASSERT_EQ(results.size(), 50u) << "jobs " << jobs;
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].value, i * 2 + 1) << "jobs " << jobs;
    }
  }
}

TEST(Executor, ZeroUnitsIsANoOp) {
  const Executor executor(4);
  bool ran = false;
  executor.for_each(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_TRUE(executor.map(0, [](std::size_t i) { return i; }).empty());
}

// Cooperative cancellation: a token armed before the fan-out stops every
// unit from starting; a token armed mid-flight stops the not-yet-started
// tail. Cancellation is only ever observed *between* units — a running
// unit always completes.

TEST(Executor, PreArmedTokenCancelsBeforeAnyUnitRuns) {
  for (const int jobs : {1, 4}) {
    const Executor executor(jobs);
    CancelToken cancel;
    cancel.request();
    std::atomic<int> ran{0};
    EXPECT_THROW(
        executor.for_each(64, [&](std::size_t) { ++ran; }, &cancel),
        Cancelled);
    EXPECT_EQ(ran.load(), 0) << "jobs " << jobs;
  }
}

TEST(Executor, MidFlightCancellationSkipsTheTail) {
  for (const int jobs : {1, 4}) {
    const Executor executor(jobs);
    CancelToken cancel;
    std::atomic<int> ran{0};
    EXPECT_THROW(executor.for_each(
                     256,
                     [&](std::size_t) {
                       if (++ran == 3) cancel.request();
                     },
                     &cancel),
                 Cancelled);
    EXPECT_GE(ran.load(), 3) << "jobs " << jobs;
    EXPECT_LT(ran.load(), 256) << "jobs " << jobs;
  }
}

TEST(Executor, NullTokenAndUnarmedTokenAreHarmless) {
  const Executor executor(4);
  CancelToken cancel;
  std::atomic<int> ran{0};
  executor.for_each(32, [&](std::size_t) { ++ran; }, nullptr);
  executor.for_each(32, [&](std::size_t) { ++ran; }, &cancel);
  EXPECT_EQ(ran.load(), 64);
}

TEST(Executor, UnitErrorsOutrankCancellation) {
  // When a unit throws and the token is also armed, callers see the unit's
  // error (the root cause), not the cancellation it triggered.
  for (const int jobs : {1, 4}) {
    const Executor executor(jobs);
    CancelToken cancel;
    try {
      executor.for_each(
          64,
          [&](std::size_t i) {
            if (i == 5) {
              cancel.request();
              throw std::runtime_error("unit 5");
            }
          },
          &cancel);
      FAIL() << "expected a rethrow at jobs " << jobs;
    } catch (const Cancelled&) {
      FAIL() << "cancellation masked the unit error at jobs " << jobs;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "unit 5") << "jobs " << jobs;
    }
  }
}

TEST(Executor, TokenResetMakesItReusable) {
  const Executor executor(1);
  CancelToken cancel;
  cancel.request();
  EXPECT_THROW(executor.for_each(4, [](std::size_t) {}, &cancel), Cancelled);
  cancel.reset();
  int ran = 0;
  executor.for_each(4, [&](std::size_t) { ++ran; }, &cancel);
  EXPECT_EQ(ran, 4);
}

}  // namespace
}  // namespace re::engine
