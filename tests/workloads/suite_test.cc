#include "workloads/suite.hh"

#include <gtest/gtest.h>

#include <unordered_set>

#include "sim/config.hh"
#include "workloads/cursor.hh"

namespace re::workloads {
namespace {

TEST(Suite, HasTheTwelvePaperBenchmarks) {
  const auto& names = suite_names();
  EXPECT_EQ(names.size(), 12u);
  for (const char* expected :
       {"gcc", "libquantum", "lbm", "mcf", "omnetpp", "soplex", "astar",
        "cigar", "xalan", "GemsFDTD", "leslie3d", "milc"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(Suite, UnknownNameThrows) {
  EXPECT_THROW(make_benchmark("perlbench"), std::out_of_range);
}

TEST(Suite, MakeSuiteBuildsAll) {
  const auto suite = make_suite();
  EXPECT_EQ(suite.size(), 12u);
  for (const auto& p : suite) EXPECT_GT(p.total_references(), 0u);
}

class SuiteBenchmarkTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteBenchmarkTest, ReasonableRunLength) {
  const Program p = make_benchmark(GetParam());
  EXPECT_GE(p.total_references(), 200000u) << GetParam();
  EXPECT_LE(p.total_references(), 2000000u) << GetParam();
}

TEST_P(SuiteBenchmarkTest, UniquePcs) {
  const Program p = make_benchmark(GetParam());
  std::unordered_set<Pc> pcs;
  for (const Loop& loop : p.loops) {
    for (const StaticInst& inst : loop.body) {
      EXPECT_TRUE(pcs.insert(inst.pc).second)
          << "duplicate pc " << inst.pc << " in " << GetParam();
    }
  }
}

TEST_P(SuiteBenchmarkTest, NoPrefetchesInOriginalPrograms) {
  const Program p = make_benchmark(GetParam());
  for (const Loop& loop : p.loops) {
    for (const StaticInst& inst : loop.body) {
      EXPECT_FALSE(inst.prefetch.has_value());
    }
  }
}

TEST_P(SuiteBenchmarkTest, StructuresDoNotOverlap) {
  const Program p = make_benchmark(GetParam());
  std::vector<std::pair<Addr, Addr>> ranges;
  for (const Loop& loop : p.loops) {
    for (const StaticInst& inst : loop.body) {
      Addr base = 0;
      std::uint64_t fp = pattern_footprint(inst.pattern);
      std::visit([&](const auto& pat) { base = pat.base; }, inst.pattern);
      ranges.emplace_back(base, base + fp);
    }
  }
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    for (std::size_t j = i + 1; j < ranges.size(); ++j) {
      const bool disjoint = ranges[i].second <= ranges[j].first ||
                            ranges[j].second <= ranges[i].first;
      EXPECT_TRUE(disjoint) << GetParam() << " structures " << i << " and "
                            << j << " overlap";
    }
  }
}

TEST_P(SuiteBenchmarkTest, WorkingSetExceedsScaledLlc) {
  // Every benchmark must pressure the shared LLC, or it has no place in a
  // contention study. (Hot buffers alone do not count; total footprint
  // does.)
  const Program p = make_benchmark(GetParam());
  std::uint64_t total_footprint = 0;
  for (const Loop& loop : p.loops) {
    for (const StaticInst& inst : loop.body) {
      total_footprint += pattern_footprint(inst.pattern);
    }
  }
  EXPECT_GT(total_footprint, sim::amd_phenom_ii().llc.size_bytes)
      << GetParam();
}

TEST_P(SuiteBenchmarkTest, AlternateInputDiffers) {
  const Program ref = make_benchmark(GetParam(), InputSet::Reference);
  const Program alt = make_benchmark(GetParam(), InputSet::Alternate);
  EXPECT_NE(ref.total_references(), alt.total_references()) << GetParam();
  EXPECT_EQ(ref.static_instruction_count(), alt.static_instruction_count())
      << "same binary, different data";
  // Same PCs in the same order (plans must transfer).
  for (std::size_t l = 0; l < ref.loops.size(); ++l) {
    for (std::size_t i = 0; i < ref.loops[l].body.size(); ++i) {
      EXPECT_EQ(ref.loops[l].body[i].pc, alt.loops[l].body[i].pc);
    }
  }
}

TEST_P(SuiteBenchmarkTest, DeterministicConstruction) {
  const Program a = make_benchmark(GetParam());
  const Program b = make_benchmark(GetParam());
  ProgramCursor ca(a), cb(b);
  for (int i = 0; i < 1000; ++i) {
    auto ea = ca.next();
    auto eb = cb.next();
    ASSERT_EQ(ea.has_value(), eb.has_value());
    if (!ea) break;
    EXPECT_EQ(ea->addr, eb->addr);
    EXPECT_EQ(ea->inst->pc, eb->inst->pc);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteBenchmarkTest,
                         ::testing::ValuesIn(suite_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace re::workloads
