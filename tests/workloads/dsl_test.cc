#include "workloads/dsl.hh"

#include <gtest/gtest.h>

#include "workloads/cursor.hh"
#include "workloads/suite.hh"

namespace re::workloads {
namespace {

constexpr const char* kDemo = R"(
# a demo program
program demo seed=42 reps=3
loop 100 {
  pc1: stream base=0x4000000 stride=16 footprint=768K compute=2
  pc2: chase base=0x8000000 footprint=640K node=64 compute=3 serial
  pc3: gather base=0xC000000 footprint=2K element=8 compute=2
}
loop 10 {
  pc4: shortstream base=0x10000000 stride=16 len=24 footprint=1M compute=1
  pc5: hot base=0x14000000 stride=8 footprint=512 compute=2
  pc6: strided base=0x18000000 stride=-32 footprint=64K irregular=1000 compute=0
}
)";

TEST(DslParse, ParsesHeaderAndStructure) {
  const Program p = parse_program(kDemo);
  EXPECT_EQ(p.name, "demo");
  EXPECT_EQ(p.seed, 42u);
  EXPECT_EQ(p.outer_reps, 3u);
  ASSERT_EQ(p.loops.size(), 2u);
  EXPECT_EQ(p.loops[0].iterations, 100u);
  EXPECT_EQ(p.loops[0].body.size(), 3u);
  EXPECT_EQ(p.loops[1].body.size(), 3u);
}

TEST(DslParse, ParsesPatternFields) {
  const Program p = parse_program(kDemo);
  const auto& stream = std::get<StreamPattern>(p.loops[0].body[0].pattern);
  EXPECT_EQ(stream.base, 0x4000000u);
  EXPECT_EQ(stream.stride, 16);
  EXPECT_EQ(stream.footprint, 768u * 1024);
  EXPECT_EQ(p.loops[0].body[0].compute_cycles, 2u);
  EXPECT_FALSE(p.loops[0].body[0].serial_dependent);

  const auto& chase =
      std::get<PointerChasePattern>(p.loops[0].body[1].pattern);
  EXPECT_EQ(chase.node_size, 64u);
  EXPECT_TRUE(p.loops[0].body[1].serial_dependent);

  const auto& strided = std::get<StridedPattern>(p.loops[1].body[2].pattern);
  EXPECT_EQ(strided.stride, -32);
  EXPECT_EQ(strided.irregular_ppm, 1000u);
}

TEST(DslParse, ParsesPrefetchAnnotations) {
  const Program p = parse_program(
      "program x seed=1 reps=1\n"
      "loop 10 {\n"
      "  pc1: stream base=0 stride=64 footprint=1M compute=0 "
      "; prefetchnta +256\n"
      "  pc2: stream base=0x100000000 stride=-64 footprint=1M compute=0 "
      "; prefetcht0 -128\n"
      "}\n");
  ASSERT_TRUE(p.loops[0].body[0].prefetch.has_value());
  EXPECT_EQ(p.loops[0].body[0].prefetch->hint, PrefetchHint::NTA);
  EXPECT_EQ(p.loops[0].body[0].prefetch->distance_bytes, 256);
  EXPECT_EQ(p.loops[0].body[1].prefetch->hint, PrefetchHint::T0);
  EXPECT_EQ(p.loops[0].body[1].prefetch->distance_bytes, -128);
}

TEST(DslParse, ErrorsCarryLineNumbers) {
  try {
    parse_program("program x\nloop 10 {\n  pc1: bogus base=0\n}\n");
    FAIL() << "expected DslParseError";
  } catch (const DslParseError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(DslParse, RejectsMalformedInput) {
  EXPECT_THROW(parse_program(""), DslParseError);
  EXPECT_THROW(parse_program("loop 10 {\n}\n"), DslParseError);  // no header
  EXPECT_THROW(parse_program("program x\nloop 10 {\n"), DslParseError);
  EXPECT_THROW(parse_program("program x\npc1: stream base=0\n"),
               DslParseError);  // inst outside loop
  EXPECT_THROW(
      parse_program("program x\nloop 10 {\n  pc1: stream stride=8\n}\n"),
      DslParseError);  // missing footprint
  EXPECT_THROW(
      parse_program("program x\nloop ten {\n}\n"), DslParseError);
  EXPECT_THROW(
      parse_program("program x\nloop 5 {\n  oops: stream stride=8 "
                    "footprint=1K\n}\n"),
      DslParseError);  // bad label
}

TEST(DslPrint, RoundTripsStructure) {
  const Program original = parse_program(kDemo);
  const Program reparsed = parse_program(print_program(original));
  EXPECT_EQ(reparsed.name, original.name);
  EXPECT_EQ(reparsed.seed, original.seed);
  EXPECT_EQ(reparsed.outer_reps, original.outer_reps);
  ASSERT_EQ(reparsed.loops.size(), original.loops.size());
  for (std::size_t l = 0; l < original.loops.size(); ++l) {
    EXPECT_EQ(reparsed.loops[l].iterations, original.loops[l].iterations);
    ASSERT_EQ(reparsed.loops[l].body.size(), original.loops[l].body.size());
  }
}

class DslSuiteRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DslSuiteRoundTripTest, BuiltinBenchmarksRoundTripExactly) {
  // Strongest property: the reparsed program generates the identical
  // address stream (pattern parameters, seeds and prefetches all survive).
  const Program original = make_benchmark(GetParam());
  const Program reparsed = parse_program(print_program(original));
  ProgramCursor a(original), b(reparsed);
  for (int i = 0; i < 20000; ++i) {
    auto ea = a.next();
    auto eb = b.next();
    ASSERT_EQ(ea.has_value(), eb.has_value());
    if (!ea) break;
    ASSERT_EQ(ea->addr, eb->addr) << GetParam() << " at ref " << i;
    ASSERT_EQ(ea->inst->pc, eb->inst->pc);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, DslSuiteRoundTripTest,
                         ::testing::ValuesIn(suite_names()),
                         [](const auto& info) { return info.param; });

TEST(DslPrint, PrefetchAnnotationsRoundTrip) {
  Program p = parse_program(kDemo);
  p.loops[0].body[0].prefetch = PrefetchOp{192, PrefetchHint::NTA};
  const Program reparsed = parse_program(print_program(p));
  ASSERT_TRUE(reparsed.loops[0].body[0].prefetch.has_value());
  EXPECT_EQ(reparsed.loops[0].body[0].prefetch->distance_bytes, 192);
  EXPECT_EQ(reparsed.loops[0].body[0].prefetch->hint, PrefetchHint::NTA);
}

}  // namespace
}  // namespace re::workloads
