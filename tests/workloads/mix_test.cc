#include "workloads/mix.hh"

#include <gtest/gtest.h>

#include <algorithm>

#include "workloads/cursor.hh"

namespace re::workloads {
namespace {

TEST(GenerateMixes, CountAndArity) {
  const auto mixes = generate_mixes(180, 4, 0x180);
  EXPECT_EQ(mixes.size(), 180u);
  for (const MixSpec& mix : mixes) {
    EXPECT_EQ(mix.apps.size(), 4u);
    for (const std::string& app : mix.apps) {
      EXPECT_NE(std::find(suite_names().begin(), suite_names().end(), app),
                suite_names().end());
    }
  }
}

TEST(GenerateMixes, DeterministicForSeed) {
  const auto a = generate_mixes(50, 4, 7);
  const auto b = generate_mixes(50, 4, 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].apps, b[i].apps);
  }
}

TEST(GenerateMixes, DifferentSeedsDiffer) {
  const auto a = generate_mixes(50, 4, 1);
  const auto b = generate_mixes(50, 4, 2);
  int different = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].apps != b[i].apps) ++different;
  }
  EXPECT_GT(different, 40);
}

TEST(GenerateMixes, CoversTheSuite) {
  const auto mixes = generate_mixes(180, 4, 0x180);
  std::set<std::string> seen;
  for (const MixSpec& mix : mixes) {
    seen.insert(mix.apps.begin(), mix.apps.end());
  }
  EXPECT_EQ(seen.size(), suite_names().size());
}

TEST(RebaseProgram, ShiftsEveryAddressByOffset) {
  Program p = make_benchmark("libquantum");
  Program shifted = p;
  const Addr offset = core_address_offset(2);
  rebase_program(shifted, offset);

  ProgramCursor orig(p), moved(shifted);
  for (int i = 0; i < 2000; ++i) {
    auto a = orig.next();
    auto b = moved.next();
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->addr + offset, b->addr);
  }
}

TEST(CoreAddressOffset, DisjointTerabyteRegions) {
  EXPECT_EQ(core_address_offset(0), 0u);
  EXPECT_EQ(core_address_offset(1), 1ULL << 40);
  EXPECT_NE(core_address_offset(2), core_address_offset(3));
}

}  // namespace
}  // namespace re::workloads
