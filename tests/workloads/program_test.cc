#include "workloads/program.hh"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace re::workloads {
namespace {

TEST(StreamPattern, AdvancesByStrideAndWraps) {
  const AccessPattern p = StreamPattern{1000, 16, 64};
  PatternState state;
  EXPECT_EQ(next_address(p, state, 1), 1000u);
  EXPECT_EQ(next_address(p, state, 1), 1016u);
  EXPECT_EQ(next_address(p, state, 1), 1032u);
  EXPECT_EQ(next_address(p, state, 1), 1048u);
  EXPECT_EQ(next_address(p, state, 1), 1000u);  // wrapped
}

TEST(StreamPattern, NegativeStrideWalksBackwards) {
  const AccessPattern p = StreamPattern{1000, -16, 64};
  PatternState state;
  EXPECT_EQ(next_address(p, state, 1), 1000u);
  EXPECT_EQ(next_address(p, state, 1), 1048u);  // Euclidean wrap
  EXPECT_EQ(next_address(p, state, 1), 1032u);
}

TEST(StridedPattern, NoJumpsWithoutIrregularity) {
  const AccessPattern p = StridedPattern{0, 8, 1 << 20, 0};
  PatternState state;
  Addr prev = next_address(p, state, 3);
  for (int i = 1; i < 100; ++i) {
    const Addr cur = next_address(p, state, 3);
    EXPECT_EQ(cur - prev, 8u);
    prev = cur;
  }
}

TEST(StridedPattern, IrregularityCausesJumps) {
  const AccessPattern p = StridedPattern{0, 8, 1 << 20, 200000};  // 20%
  PatternState state;
  Addr prev = next_address(p, state, 3);
  int jumps = 0;
  for (int i = 1; i < 1000; ++i) {
    const Addr cur = next_address(p, state, 3);
    if (cur != prev + 8) ++jumps;
    prev = cur;
  }
  EXPECT_GT(jumps, 100);
  EXPECT_LT(jumps, 350);
}

TEST(PointerChasePattern, StaysNodeAlignedWithinFootprint) {
  const AccessPattern p = PointerChasePattern{4096, 1 << 16, 64};
  PatternState state;
  state.walk_state = 12345;
  for (int i = 0; i < 1000; ++i) {
    const Addr a = next_address(p, state, 9);
    EXPECT_GE(a, 4096u);
    EXPECT_LT(a, 4096u + (1 << 16));
    EXPECT_EQ((a - 4096u) % 64, 0u);
  }
}

TEST(PointerChasePattern, WalkVisitsManyDistinctNodes) {
  const AccessPattern p = PointerChasePattern{0, 1 << 20, 64};
  PatternState state;
  state.walk_state = 99;
  std::unordered_set<Addr> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(next_address(p, state, 9));
  EXPECT_GT(seen.size(), 1800u);  // near-uniform walk
}

TEST(GatherPattern, UniformCoverage) {
  const AccessPattern p = GatherPattern{0, 64 * 1024, 8};
  PatternState state;
  std::unordered_set<Addr> lines;
  for (int i = 0; i < 20000; ++i) {
    lines.insert(line_of(next_address(p, state, 5)));
  }
  EXPECT_GT(lines.size(), 900u);  // 1024 lines, near-complete coverage
}

TEST(GatherPattern, DeterministicInIterationIndex) {
  const AccessPattern p = GatherPattern{0, 1 << 16, 8};
  PatternState s1, s2;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(next_address(p, s1, 5), next_address(p, s2, 5));
  }
}

TEST(ShortStreamPattern, RunsAreStrided) {
  const AccessPattern p = ShortStreamPattern{0, 16, 8, 1 << 20};
  PatternState state;
  Addr prev = next_address(p, state, 7);
  int in_run_strides = 0;
  for (int i = 1; i < 8; ++i) {
    const Addr cur = next_address(p, state, 7);
    if (cur == prev + 16) ++in_run_strides;
    prev = cur;
  }
  EXPECT_EQ(in_run_strides, 7);  // whole first run is strided
  // Next access starts a new run at a different origin.
  const Addr new_run = next_address(p, state, 7);
  EXPECT_NE(new_run, prev + 16);
}

TEST(PatternClassification, RegularityFlags) {
  EXPECT_TRUE(pattern_is_regular(StreamPattern{}));
  EXPECT_TRUE(pattern_is_regular(HotBufferPattern{}));
  EXPECT_TRUE(pattern_is_regular(StridedPattern{0, 8, 1 << 20, 1000}));
  EXPECT_FALSE(pattern_is_regular(StridedPattern{0, 8, 1 << 20, 500000}));
  EXPECT_FALSE(pattern_is_regular(PointerChasePattern{}));
  EXPECT_FALSE(pattern_is_regular(GatherPattern{}));
  EXPECT_TRUE(pattern_is_regular(ShortStreamPattern{0, 16, 8, 1 << 20}));
  EXPECT_FALSE(pattern_is_regular(ShortStreamPattern{0, 16, 2, 1 << 20}));
}

TEST(PatternFootprint, ReportsFootprint) {
  EXPECT_EQ(pattern_footprint(StreamPattern{0, 8, 4096}), 4096u);
  EXPECT_EQ(pattern_footprint(GatherPattern{0, 8192, 8}), 8192u);
}

Program two_loop_program() {
  Program p;
  p.name = "t";
  p.outer_reps = 3;
  StaticInst a;
  a.pc = 1;
  a.pattern = StreamPattern{0, 64, 1 << 16};
  StaticInst b;
  b.pc = 2;
  b.pattern = GatherPattern{1 << 20, 1 << 16, 8};
  p.loops.push_back(Loop{{a, b}, 10});
  StaticInst c;
  c.pc = 3;
  c.pattern = StreamPattern{1 << 21, 8, 1 << 12};
  p.loops.push_back(Loop{{c}, 5});
  return p;
}

TEST(Program, TotalReferences) {
  const Program p = two_loop_program();
  EXPECT_EQ(p.total_references(), (10 * 2 + 5 * 1) * 3u);
}

TEST(Program, ExecutionsOfPc) {
  const Program p = two_loop_program();
  EXPECT_EQ(p.executions_of(1), 30u);
  EXPECT_EQ(p.executions_of(3), 15u);
  EXPECT_EQ(p.executions_of(42), 0u);
}

TEST(Program, FindLocatesInstructions) {
  Program p = two_loop_program();
  ASSERT_NE(p.find(3), nullptr);
  EXPECT_EQ(p.find(3)->pc, 3u);
  EXPECT_EQ(p.find(99), nullptr);
  const Program& cp = p;
  EXPECT_NE(cp.find(2), nullptr);
}

TEST(Program, StaticInstructionCount) {
  EXPECT_EQ(two_loop_program().static_instruction_count(), 3u);
}

TEST(Mix64, IsDeterministicAndDispersive) {
  EXPECT_EQ(mix64(42), mix64(42));
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 1000; ++i) outs.insert(mix64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

}  // namespace
}  // namespace re::workloads
