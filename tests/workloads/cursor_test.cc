#include "workloads/cursor.hh"

#include <gtest/gtest.h>

#include <vector>

namespace re::workloads {
namespace {

Program small_program(std::uint64_t outer = 2) {
  Program p;
  p.name = "cursor-test";
  p.seed = 17;
  p.outer_reps = outer;
  StaticInst a;
  a.pc = 1;
  a.pattern = StreamPattern{0, 64, 1 << 12};
  StaticInst b;
  b.pc = 2;
  b.pattern = GatherPattern{1 << 20, 1 << 14, 8};
  p.loops.push_back(Loop{{a, b}, 3});
  StaticInst c;
  c.pc = 3;
  c.pattern = StreamPattern{1 << 21, 8, 1 << 10};
  p.loops.push_back(Loop{{c}, 2});
  return p;
}

TEST(ProgramCursor, VisitsInstructionsInProgramOrder) {
  const Program p = small_program(1);
  ProgramCursor cursor(p);
  std::vector<Pc> pcs;
  while (auto event = cursor.next()) pcs.push_back(event->inst->pc);
  const std::vector<Pc> expected{1, 2, 1, 2, 1, 2, 3, 3};
  EXPECT_EQ(pcs, expected);
}

TEST(ProgramCursor, OuterRepsRepeatTheLoopSequence) {
  const Program p = small_program(3);
  ProgramCursor cursor(p);
  std::uint64_t count = 0;
  while (cursor.next()) ++count;
  EXPECT_EQ(count, p.total_references());
  EXPECT_EQ(count, 8u * 3u);
}

TEST(ProgramCursor, AutoRewindsAfterCompletion) {
  const Program p = small_program(1);
  ProgramCursor cursor(p);
  std::vector<Addr> first_run;
  while (auto event = cursor.next()) first_run.push_back(event->addr);
  // The cursor rewound; the next pass must produce the identical stream.
  std::vector<Addr> second_run;
  while (auto event = cursor.next()) second_run.push_back(event->addr);
  EXPECT_EQ(first_run, second_run);
}

TEST(ProgramCursor, ResetRestartsExactly) {
  const Program p = small_program(2);
  ProgramCursor cursor(p);
  std::vector<Addr> prefix;
  for (int i = 0; i < 5; ++i) prefix.push_back(cursor.next()->addr);
  cursor.reset();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(cursor.next()->addr, prefix[static_cast<std::size_t>(i)]);
  }
}

TEST(ProgramCursor, ReferencesDoneCounts) {
  const Program p = small_program(1);
  ProgramCursor cursor(p);
  EXPECT_EQ(cursor.references_done(), 0u);
  cursor.next();
  cursor.next();
  EXPECT_EQ(cursor.references_done(), 2u);
}

TEST(ProgramCursor, SkipsEmptyLoops) {
  Program p = small_program(1);
  p.loops.insert(p.loops.begin(), Loop{{}, 100});  // empty body
  Loop zero_iters;
  StaticInst inst;
  inst.pc = 9;
  inst.pattern = StreamPattern{};
  zero_iters.body.push_back(inst);
  zero_iters.iterations = 0;
  p.loops.push_back(zero_iters);

  ProgramCursor cursor(p);
  std::uint64_t count = 0;
  while (auto event = cursor.next()) {
    EXPECT_NE(event->inst->pc, 9u);
    ++count;
  }
  EXPECT_EQ(count, 8u);
}

TEST(ProgramCursor, EmptyProgramYieldsNothing) {
  Program p;
  p.name = "empty";
  ProgramCursor cursor(p);
  EXPECT_FALSE(cursor.next().has_value());
  EXPECT_FALSE(cursor.next().has_value());
}

TEST(ProgramCursor, DistinctInstructionsGetDecorrelatedStreams) {
  // Two pointer chases over the same footprint must not follow the same
  // path (distinct per-instruction seeds).
  Program p;
  p.name = "chases";
  p.seed = 5;
  StaticInst a;
  a.pc = 1;
  a.pattern = PointerChasePattern{0, 1 << 16, 64};
  StaticInst b;
  b.pc = 2;
  b.pattern = PointerChasePattern{0, 1 << 16, 64};
  p.loops.push_back(Loop{{a, b}, 100});

  ProgramCursor cursor(p);
  int equal = 0;
  while (true) {
    auto ea = cursor.next();
    if (!ea) break;
    auto eb = cursor.next();
    if (!eb) break;
    if (ea->addr == eb->addr) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(ProgramCursor, DifferentProgramSeedsDifferentGatherStreams) {
  Program p = small_program(1);
  Program q = small_program(1);
  q.seed = 18;
  ProgramCursor cp(p), cq(q);
  int diff = 0;
  while (true) {
    auto ep = cp.next();
    auto eq = cq.next();
    if (!ep || !eq) break;
    if (ep->inst->pc == 2 && ep->addr != eq->addr) ++diff;
  }
  EXPECT_GT(diff, 0);
}

}  // namespace
}  // namespace re::workloads
