#include "workloads/parallel.hh"

#include <gtest/gtest.h>

namespace re::workloads {
namespace {

TEST(Parallel, NamesMatchFigure12) {
  const auto& names = parallel_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "swim");
  EXPECT_EQ(names[1], "cg");
  EXPECT_EQ(names[2], "fma3d");
  EXPECT_EQ(names[3], "dc");
}

TEST(Parallel, BandwidthBoundFlags) {
  EXPECT_TRUE(parallel_is_bandwidth_bound("swim"));
  EXPECT_TRUE(parallel_is_bandwidth_bound("cg"));
  EXPECT_FALSE(parallel_is_bandwidth_bound("fma3d"));
  EXPECT_FALSE(parallel_is_bandwidth_bound("dc"));
}

TEST(Parallel, InvalidArgumentsThrow) {
  EXPECT_THROW(make_parallel("swim", 0), std::invalid_argument);
  EXPECT_THROW(make_parallel("nonesuch", 2), std::out_of_range);
}

class ParallelWorkloadTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(ParallelWorkloadTest, ShardCountMatchesThreads) {
  const auto [name, threads] = GetParam();
  const auto shards = make_parallel(name, threads);
  EXPECT_EQ(shards.size(), static_cast<std::size_t>(threads));
  for (const Program& shard : shards) {
    EXPECT_EQ(shard.name, name);
    EXPECT_GT(shard.total_references(), 0u);
  }
}

TEST_P(ParallelWorkloadTest, WorkSplitsAcrossThreads) {
  const auto [name, threads] = GetParam();
  const auto one = make_parallel(name, 1);
  const auto many = make_parallel(name, threads);
  std::uint64_t total = 0;
  for (const Program& shard : many) total += shard.total_references();
  // Total work is conserved (modulo integer division).
  EXPECT_NEAR(static_cast<double>(total),
              static_cast<double>(one[0].total_references()),
              static_cast<double>(one[0].total_references()) * 0.01);
}

TEST_P(ParallelWorkloadTest, ShardsHaveDisjointAddressSpaces) {
  const auto [name, threads] = GetParam();
  if (threads < 2) return;
  const auto shards = make_parallel(name, threads);
  // Every shard is rebased into its own 1 TB region.
  for (std::size_t s = 0; s < shards.size(); ++s) {
    for (const Loop& loop : shards[s].loops) {
      for (const StaticInst& inst : loop.body) {
        Addr base = 0;
        std::visit([&](const auto& p) { base = p.base; }, inst.pattern);
        EXPECT_EQ(base >> 40, s);
      }
    }
  }
}

TEST_P(ParallelWorkloadTest, SamePcsAcrossShards) {
  const auto [name, threads] = GetParam();
  const auto shards = make_parallel(name, threads);
  for (std::size_t s = 1; s < shards.size(); ++s) {
    ASSERT_EQ(shards[s].loops.size(), shards[0].loops.size());
    for (std::size_t l = 0; l < shards[s].loops.size(); ++l) {
      for (std::size_t i = 0; i < shards[s].loops[l].body.size(); ++i) {
        EXPECT_EQ(shards[s].loops[l].body[i].pc,
                  shards[0].loops[l].body[i].pc);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ParallelWorkloadTest,
    ::testing::Combine(::testing::ValuesIn(parallel_names()),
                       ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace re::workloads
