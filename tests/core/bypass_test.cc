#include "core/bypass.hh"

#include <gtest/gtest.h>

#include "core/sampler.hh"
#include "workloads/suite.hh"

namespace re::core {
namespace {

TEST(ReuseGraph, EdgesFromReusePairs) {
  Profile profile;
  profile.reuse_samples.push_back(ReuseSample{1, 2, 10});
  profile.reuse_samples.push_back(ReuseSample{1, 2, 12});
  profile.reuse_samples.push_back(ReuseSample{1, 3, 5});
  profile.reuse_samples.push_back(ReuseSample{4, 4, 0});
  const ReuseGraph graph(profile);
  EXPECT_EQ(graph.edge_count(1, 2), 2u);
  EXPECT_EQ(graph.edge_count(1, 3), 1u);
  EXPECT_EQ(graph.edge_count(4, 4), 1u);
  EXPECT_EQ(graph.edge_count(2, 1), 0u);
  EXPECT_EQ(graph.out_degree_samples(1), 3u);
  EXPECT_EQ(graph.out_degree_samples(9), 0u);
}

TEST(ReuseGraph, ReusersFilteredByWeight) {
  Profile profile;
  for (int i = 0; i < 95; ++i) {
    profile.reuse_samples.push_back(ReuseSample{1, 2, 10});
  }
  for (int i = 0; i < 5; ++i) {
    profile.reuse_samples.push_back(ReuseSample{1, 3, 10});
  }
  const ReuseGraph graph(profile);
  const auto heavy = graph.reusers_of(1, 0.10);
  ASSERT_EQ(heavy.size(), 1u);
  EXPECT_EQ(heavy[0], 2u);
  const auto all = graph.reusers_of(1, 0.01);
  EXPECT_EQ(all.size(), 2u);
  EXPECT_TRUE(graph.reusers_of(42, 0.0).empty());
}

/// Profile where pc 1 streams (flat MRC) and pc 2's data is reused out of
/// the LLC (curve drops between L1 and LLC).
Profile stream_and_llc_profile(const sim::MachineConfig& machine) {
  Sampler s(SamplerConfig{2, 5});
  const std::uint64_t llc_lines = machine.llc.num_lines();
  // pc 2 sweeps a working set of ~ half the LLC (misses L1, hits LLC).
  const std::uint64_t ws = llc_lines / 2;
  for (int round = 0; round < 6; ++round) {
    for (std::uint64_t i = 0; i < ws; ++i) {
      s.observe(2, (1ULL << 32) + i * kLineSize);
    }
  }
  // pc 1 streams unique lines (never reused).
  for (std::uint64_t i = 0; i < 6 * ws; ++i) {
    s.observe(1, i * kLineSize);
  }
  return s.finish();
}

TEST(MrcFlatness, StreamIsFlatLlcResidentIsNot) {
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const Profile profile = stream_and_llc_profile(machine);
  const StatStack model(profile);
  EXPECT_TRUE(mrc_flat_between_l1_and_llc(model.pc_mrc(1), machine, 0.10));
  EXPECT_FALSE(mrc_flat_between_l1_and_llc(model.pc_mrc(2), machine, 0.10));
}

TEST(MrcFlatness, ShrunkenEffectiveLlcReclassifiesLlcResidents) {
  // pc 2's working set is served out of the full LLC (curve drops, not
  // flat), but a co-run share below the working set means co-runners evict
  // it first: within the shrunken [L1, effective-LLC] window the curve IS
  // flat, so the bypass pass may reclassify.
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const Profile profile = stream_and_llc_profile(machine);
  const StatStack model(profile);
  EXPECT_FALSE(mrc_flat_between_l1_and_llc(model.pc_mrc(2), machine, 0.10));
  EXPECT_TRUE(mrc_flat_between_l1_and_llc(model.pc_mrc(2), machine, 0.10,
                                          machine.l2.size_bytes));
}

TEST(MrcFlatness, EmptyCurveCountsAsFlat) {
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  EXPECT_TRUE(mrc_flat_between_l1_and_llc(MissRatioCurve{}, machine, 0.1));
}

TEST(ShouldBypass, StreamReusedOnlyByItselfBypasses) {
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const Profile profile = stream_and_llc_profile(machine);
  const StatStack model(profile);
  const ReuseGraph graph(profile);
  EXPECT_TRUE(should_bypass(1, graph, model, machine));
}

TEST(ShouldBypass, LlcReuserDisqualifiesBypass) {
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  // pc 1's lines are re-touched by pc 2, and pc 2 reuses data out of the
  // LLC -> prefetching pc 1 non-temporally would starve pc 2.
  Sampler s(SamplerConfig{2, 5});
  const std::uint64_t ws = machine.llc.num_lines() / 2;
  for (int round = 0; round < 6; ++round) {
    for (std::uint64_t i = 0; i < ws; ++i) {
      const Addr addr = (1ULL << 32) + i * kLineSize;
      s.observe(1, addr);      // pc 1 touches
      s.observe(2, addr + 8);  // pc 2 re-touches the same line
    }
  }
  const Profile profile = s.finish();
  const StatStack model(profile);
  const ReuseGraph graph(profile);
  // pc 2 reuses across rounds out of the LLC: its curve drops.
  EXPECT_FALSE(should_bypass(1, graph, model, machine));
}

TEST(ShouldBypass, SelfIsAlwaysConsideredAReuser) {
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  // pc 1 itself reuses its data at LLC distances: even with no other
  // reusers it must not bypass.
  Sampler s(SamplerConfig{2, 5});
  const std::uint64_t ws = machine.llc.num_lines() / 2;
  for (int round = 0; round < 8; ++round) {
    for (std::uint64_t i = 0; i < ws; ++i) {
      s.observe(1, (1ULL << 33) + i * kLineSize);
    }
  }
  const Profile profile = s.finish();
  const StatStack model(profile);
  const ReuseGraph graph(profile);
  EXPECT_FALSE(should_bypass(1, graph, model, machine));
}

TEST(BypassIntegration, LibquantumStreamsBypassOmnetppBufferDoesNot) {
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  {
    const Profile profile = profile_program(
        workloads::make_benchmark("libquantum"), SamplerConfig{500, 3});
    const StatStack model(profile);
    const ReuseGraph graph(profile);
    // The two register sweeps stream with no LLC reuse: bypass.
    EXPECT_TRUE(should_bypass(1, graph, model, machine));
    EXPECT_TRUE(should_bypass(2, graph, model, machine));
  }
  {
    // omnetpp's msg-buffer sweep (pc 3) lives in a 192 kB buffer that fits
    // the LLC: its own reuse comes out of L2/LLC, so no bypass.
    const Profile profile = profile_program(
        workloads::make_benchmark("omnetpp"), SamplerConfig{500, 3});
    const StatStack model(profile);
    const ReuseGraph graph(profile);
    EXPECT_FALSE(should_bypass(3, graph, model, machine));
  }
}

}  // namespace
}  // namespace re::core
