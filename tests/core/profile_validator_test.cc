#include "core/profile_validator.hh"

#include <gtest/gtest.h>

#include <cmath>

#include "core/sampler.hh"
#include "workloads/suite.hh"

namespace re::core {
namespace {

Profile tiny_profile() {
  Profile p;
  p.total_references = 1000;
  p.sample_period = 10;
  p.reuse_samples.push_back(ReuseSample{1, 2, 50, 100});
  p.stride_samples.push_back(StrideSample{1, 64, 3, 100});
  p.pc_execution_counts[1] = 500;
  return p;
}

TEST(ProfileValidator, CleanProfilePassesThroughUnchanged) {
  const Profile original =
      profile_program(workloads::make_benchmark("libquantum"),
                      SamplerConfig{1000, 42});
  DegradationLog log;
  const ProfileValidator validator;
  const Expected<Profile> sanitized = validator.sanitize(original, &log);
  ASSERT_TRUE(sanitized.has_value());
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(sanitized->reuse_samples.size(), original.reuse_samples.size());
  EXPECT_EQ(sanitized->stride_samples.size(),
            original.stride_samples.size());
  EXPECT_EQ(sanitized->total_references, original.total_references);
}

TEST(ProfileValidator, EmptyProfileIsAnError) {
  DegradationLog log;
  const Expected<Profile> result = ProfileValidator().sanitize(Profile{}, &log);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(log.count(DegradationReason::kProfileEmpty), 1u);
}

TEST(ProfileValidator, InconsistentBookkeepingIsAnError) {
  Profile p = tiny_profile();
  p.total_references = 0;  // samples present but window claims empty
  DegradationLog log;
  const Expected<Profile> result = ProfileValidator().sanitize(p, &log);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(log.count(DegradationReason::kProfileInconsistent), 1u);
}

TEST(ProfileValidator, DiscardsImpossibleReuseSamples) {
  Profile p = tiny_profile();
  p.reuse_samples.push_back(ReuseSample{3, 4, 5000, 100});  // distance > window
  p.reuse_samples.push_back(ReuseSample{5, 6, 10, 2000});   // at_ref > window
  DegradationLog log;
  const Expected<Profile> result = ProfileValidator().sanitize(p, &log);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->reuse_samples.size(), 1u);
  EXPECT_EQ(log.count(DegradationReason::kCorruptReuseSample), 1u);
}

TEST(ProfileValidator, DiscardsImplausibleStrides) {
  Profile p = tiny_profile();
  p.stride_samples.push_back(
      StrideSample{7, std::int64_t{1} << 45, 3, 100});
  p.stride_samples.push_back(
      StrideSample{8, -(std::int64_t{1} << 45), 3, 100});
  DegradationLog log;
  const Expected<Profile> result = ProfileValidator().sanitize(p, &log);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->stride_samples.size(), 1u);
  EXPECT_EQ(log.count(DegradationReason::kCorruptStrideSample), 1u);
}

TEST(ProfileValidator, ClassifiesThinStrideEvidenceLowConfidence) {
  const ProfileValidator validator;
  StrideInfo info;
  info.stride = 64;
  info.dominance = 1.0;

  LoadVerdict v = validator.classify_stride_evidence(info, 0);
  EXPECT_EQ(v.confidence, LoadConfidence::kLowConfidence);
  EXPECT_EQ(v.reason, DegradationReason::kNoStrideSamples);

  v = validator.classify_stride_evidence(info, 3);
  EXPECT_EQ(v.confidence, LoadConfidence::kLowConfidence);
  EXPECT_EQ(v.reason, DegradationReason::kInsufficientStrideSamples);

  v = validator.classify_stride_evidence(info, 100);
  EXPECT_EQ(v.confidence, LoadConfidence::kOk);
}

TEST(ProfileValidator, ClassifiesLowDominanceAndZeroStride) {
  const ProfileValidator validator;
  StrideInfo info;
  info.stride = 64;
  info.dominance = 0.5;
  LoadVerdict v = validator.classify_stride_evidence(info, 100);
  EXPECT_EQ(v.confidence, LoadConfidence::kLowConfidence);
  EXPECT_EQ(v.reason, DegradationReason::kLowStrideDominance);

  info.dominance = 0.9;
  info.stride = 0;
  v = validator.classify_stride_evidence(info, 100);
  EXPECT_EQ(v.confidence, LoadConfidence::kLowConfidence);
  EXPECT_EQ(v.reason, DegradationReason::kZeroStride);
}

TEST(ProfileValidator, NonFiniteStrideStatsAreInvalid) {
  const ProfileValidator validator;
  StrideInfo info;
  info.stride = 64;
  info.dominance = std::nan("");
  const LoadVerdict v = validator.classify_stride_evidence(info, 100);
  EXPECT_EQ(v.confidence, LoadConfidence::kInvalid);
  EXPECT_EQ(v.reason, DegradationReason::kNumericHazard);
}

TEST(ProfileValidator, ModelNumericsHazardsAreInvalid) {
  const ProfileValidator validator;
  // Healthy values pass.
  EXPECT_EQ(validator.classify_model_numerics(0.5, 0.3, 0.1, 120.0, 3.0)
                .confidence,
            LoadConfidence::kOk);
  // NaN miss ratio, out-of-range ratio, negative latency, zero Δ all fail.
  EXPECT_EQ(validator
                .classify_model_numerics(std::nan(""), 0.3, 0.1, 120.0, 3.0)
                .confidence,
            LoadConfidence::kInvalid);
  EXPECT_EQ(validator.classify_model_numerics(1.5, 0.3, 0.1, 120.0, 3.0)
                .confidence,
            LoadConfidence::kInvalid);
  EXPECT_EQ(validator.classify_model_numerics(0.5, 0.3, 0.1, -1.0, 3.0)
                .confidence,
            LoadConfidence::kInvalid);
  EXPECT_EQ(validator.classify_model_numerics(0.5, 0.3, 0.1, 120.0, 0.0)
                .confidence,
            LoadConfidence::kInvalid);
}

TEST(DegradationLog, CountsAndRenders) {
  DegradationLog log;
  log.record(3, DegradationReason::kLowStrideDominance, "dominance 0.5");
  log.record(3, DegradationReason::kDistanceUnavailable);
  log.record(0, DegradationReason::kCorruptReuseSample, "discarded 2");
  EXPECT_EQ(log.size(), 3u);
  EXPECT_TRUE(log.contains(3));
  EXPECT_FALSE(log.contains(4));
  EXPECT_EQ(log.count(DegradationReason::kLowStrideDominance), 1u);
  const std::string text = log.to_string();
  EXPECT_NE(text.find("pc3 low_stride_dominance"), std::string::npos);
  EXPECT_NE(text.find("corrupt_reuse_sample"), std::string::npos);
}

}  // namespace
}  // namespace re::core
