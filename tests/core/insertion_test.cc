#include "core/insertion.hh"

#include <gtest/gtest.h>

#include "workloads/cursor.hh"

using re::workloads::PrefetchHint;
#include "workloads/suite.hh"

namespace re::core {
namespace {

using workloads::Program;

TEST(Insertion, AttachesPrefetchToNamedPc) {
  const Program original = workloads::make_benchmark("libquantum");
  const Program optimized =
      insert_prefetches(
      original,
      {{1, 256, PrefetchHint::T0}, {2, 128, PrefetchHint::NTA}});

  const auto* pc1 = optimized.find(1);
  ASSERT_NE(pc1, nullptr);
  ASSERT_TRUE(pc1->prefetch.has_value());
  EXPECT_EQ(pc1->prefetch->distance_bytes, 256);
  EXPECT_EQ(pc1->prefetch->hint, PrefetchHint::T0);
  EXPECT_FALSE(pc1->prefetch->non_temporal());

  const auto* pc2 = optimized.find(2);
  ASSERT_TRUE(pc2->prefetch.has_value());
  EXPECT_TRUE(pc2->prefetch->non_temporal());
}

TEST(Insertion, OriginalProgramIsUntouched) {
  const Program original = workloads::make_benchmark("libquantum");
  (void)insert_prefetches(original, {{1, 256, PrefetchHint::T0}});
  EXPECT_FALSE(original.find(1)->prefetch.has_value());
}

TEST(Insertion, UnknownPcsAreIgnored) {
  const Program original = workloads::make_benchmark("libquantum");
  const Program optimized = insert_prefetches(original, {{999, 64, PrefetchHint::T0}});
  for (const auto& loop : optimized.loops) {
    for (const auto& inst : loop.body) {
      EXPECT_FALSE(inst.prefetch.has_value());
    }
  }
}

TEST(Insertion, EmptyPlanIsIdentity) {
  const Program original = workloads::make_benchmark("mcf");
  const Program optimized = insert_prefetches(original, {});
  EXPECT_EQ(optimized.total_references(), original.total_references());
  EXPECT_EQ(optimized.static_instruction_count(),
            original.static_instruction_count());
}

TEST(Insertion, NegativeDistancesSupported) {
  const Program original = workloads::make_benchmark("libquantum");
  const Program optimized = insert_prefetches(original, {{1, -512, PrefetchHint::T0}});
  EXPECT_EQ(optimized.find(1)->prefetch->distance_bytes, -512);
}

TEST(Insertion, LastPlanWinsOnDuplicates) {
  const Program original = workloads::make_benchmark("libquantum");
  const Program optimized =
      insert_prefetches(
      original, {{1, 64, PrefetchHint::T0}, {1, 128, PrefetchHint::NTA}});
  EXPECT_EQ(optimized.find(1)->prefetch->distance_bytes, 128);
  EXPECT_TRUE(optimized.find(1)->prefetch->non_temporal());
}

TEST(Insertion, DoesNotChangeAddressStream) {
  // Prefetch ops must not perturb the demand access sequence.
  const Program original = workloads::make_benchmark("soplex");
  const Program optimized = insert_prefetches(original, {{1, 256, PrefetchHint::NTA}});
  workloads::ProgramCursor a(original), b(optimized);
  for (int i = 0; i < 5000; ++i) {
    auto ea = a.next();
    auto eb = b.next();
    ASSERT_EQ(ea.has_value(), eb.has_value());
    if (!ea) break;
    EXPECT_EQ(ea->addr, eb->addr);
    EXPECT_EQ(ea->inst->pc, eb->inst->pc);
  }
}

}  // namespace
}  // namespace re::core
