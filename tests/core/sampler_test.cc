#include "core/sampler.hh"

#include <gtest/gtest.h>

#include "testutil.hh"
#include "workloads/cursor.hh"
#include "workloads/suite.hh"

namespace re::core {
namespace {

using workloads::Loop;
using workloads::Program;
using workloads::StaticInst;
using workloads::StreamPattern;

std::uint64_t seed() { return re::testing::test_seed(); }

/// Feed a synthetic (pc, addr) stream with period-1 sampling so every
/// reference is a sample point — the sampler then behaves like an exact
/// reuse/stride tracker and we can check its records analytically.
Sampler exact_sampler() { return Sampler(SamplerConfig{1, seed()}); }

TEST(Sampler, RecordsReuseDistanceOfSameLine) {
  Sampler s = exact_sampler();
  s.observe(1, 0x1000);      // watch line 0x40
  s.observe(2, 0x2000);      // 1 intervening ref
  s.observe(3, 0x1010);      // same line as first access
  const Profile p = s.finish();
  ASSERT_GE(p.reuse_samples.size(), 1u);
  const ReuseSample& r = p.reuse_samples.front();
  EXPECT_EQ(r.first_pc, 1u);
  EXPECT_EQ(r.second_pc, 3u);
  EXPECT_EQ(r.distance, 1u);
}

TEST(Sampler, AdjacentReuseHasDistanceZero) {
  Sampler s = exact_sampler();
  s.observe(1, 0x1000);
  s.observe(1, 0x1008);  // same line immediately
  const Profile p = s.finish();
  ASSERT_EQ(p.reuse_samples.size(), 1u);
  EXPECT_EQ(p.reuse_samples[0].distance, 0u);
}

TEST(Sampler, RecordsStrideAndRecurrence) {
  Sampler s = exact_sampler();
  s.observe(1, 1000);
  s.observe(2, 50000);
  s.observe(3, 60000);
  s.observe(1, 1016);  // pc 1 re-executes: stride 16, recurrence 2
  const Profile p = s.finish();
  ASSERT_GE(p.stride_samples.size(), 1u);
  bool found = false;
  for (const StrideSample& ss : p.stride_samples) {
    if (ss.pc == 1) {
      EXPECT_EQ(ss.stride, 16);
      EXPECT_EQ(ss.recurrence, 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Sampler, NegativeStridesAreSigned) {
  Sampler s = exact_sampler();
  s.observe(1, 2000);
  s.observe(1, 1872);
  const Profile p = s.finish();
  ASSERT_FALSE(p.stride_samples.empty());
  EXPECT_EQ(p.stride_samples[0].stride, -128);
}

TEST(Sampler, DanglingWatchpointsAttributedToFirstPc) {
  Sampler s = exact_sampler();
  s.observe(7, 0x100000);  // never re-accessed
  s.observe(8, 0x200000);  // never re-accessed
  const Profile p = s.finish();
  EXPECT_EQ(p.dangling_reuse_samples, 2u);
  EXPECT_EQ(p.dangling_by_pc.at(7), 1u);
  EXPECT_EQ(p.dangling_by_pc.at(8), 1u);
}

TEST(Sampler, CountsPcExecutionsExactly) {
  Sampler s(SamplerConfig{1000, seed()});
  for (int i = 0; i < 10; ++i) s.observe(4, static_cast<Addr>(i) * 4096);
  for (int i = 0; i < 3; ++i) s.observe(5, static_cast<Addr>(i) * 8192);
  const Profile p = s.finish();
  EXPECT_EQ(p.executions_of(4), 10u);
  EXPECT_EQ(p.executions_of(5), 3u);
  EXPECT_EQ(p.executions_of(6), 0u);
  EXPECT_EQ(p.total_references, 13u);
}

TEST(Sampler, SparseSamplingMatchesConfiguredRate) {
  Sampler s(SamplerConfig{100, seed()});
  // Stream of unique lines: every sample dangles, so the dangling count is
  // the number of sample points taken.
  for (Addr i = 0; i < 100000; ++i) s.observe(1, i * kLineSize);
  const Profile p = s.finish();
  EXPECT_NEAR(static_cast<double>(p.dangling_reuse_samples), 1000.0, 150.0);
  EXPECT_EQ(p.sample_period, 100u);
}

TEST(Sampler, FinishResetsForReuse) {
  Sampler s = exact_sampler();
  s.observe(1, 0x1000);
  const Profile first = s.finish();
  EXPECT_EQ(first.total_references, 1u);
  s.observe(2, 0x2000);
  const Profile second = s.finish();
  EXPECT_EQ(second.total_references, 1u);
  EXPECT_EQ(second.executions_of(1), 0u);
  EXPECT_EQ(second.executions_of(2), 1u);
}

TEST(ProfileProgram, CapsAtMaxRefs) {
  workloads::Program program;
  program.name = "p";
  program.seed = seed();
  StaticInst inst;
  inst.pc = 1;
  inst.pattern = StreamPattern{0, 64, 1 << 20};
  program.loops.push_back(Loop{{inst}, 100000});
  const Profile p = profile_program(program, SamplerConfig{10, seed()}, 5000);
  EXPECT_EQ(p.total_references, 5000u);
}

TEST(ProfileProgram, StrideSamplesReflectProgramStride) {
  workloads::Program program;
  program.name = "p";
  program.seed = seed();
  StaticInst inst;
  inst.pc = 1;
  inst.pattern = StreamPattern{0, 24, 1 << 22};
  program.loops.push_back(Loop{{inst}, 50000});
  const Profile p = profile_program(program, SamplerConfig{50, seed()});
  ASSERT_GT(p.stride_samples.size(), 100u);
  for (const StrideSample& ss : p.stride_samples) {
    EXPECT_EQ(ss.stride, 24);
    EXPECT_EQ(ss.recurrence, 0u);  // single-instruction loop
  }
}

TEST(ProfileProgram, DeterministicForSameSeed) {
  const workloads::Program program = workloads::make_benchmark("soplex");
  const Profile a = profile_program(program, SamplerConfig{1000, seed()});
  const Profile b = profile_program(program, SamplerConfig{1000, seed()});
  EXPECT_EQ(a.reuse_samples.size(), b.reuse_samples.size());
  EXPECT_EQ(a.stride_samples.size(), b.stride_samples.size());
  EXPECT_EQ(a.dangling_reuse_samples, b.dangling_reuse_samples);
}

TEST(ProfileProgram, SameSeedGivesBitIdenticalProfiles) {
  // Stronger than size equality: every recorded sample, count, and piece of
  // bookkeeping must match field-for-field — the reproducibility contract
  // the fault-injection harness builds on.
  const workloads::Program program = workloads::make_benchmark("gcc");
  const Profile a = profile_program(program, SamplerConfig{500, seed()});
  const Profile b = profile_program(program, SamplerConfig{500, seed()});
  ASSERT_EQ(a.reuse_samples.size(), b.reuse_samples.size());
  for (std::size_t i = 0; i < a.reuse_samples.size(); ++i) {
    EXPECT_EQ(a.reuse_samples[i].first_pc, b.reuse_samples[i].first_pc);
    EXPECT_EQ(a.reuse_samples[i].second_pc, b.reuse_samples[i].second_pc);
    EXPECT_EQ(a.reuse_samples[i].distance, b.reuse_samples[i].distance);
    EXPECT_EQ(a.reuse_samples[i].at_ref, b.reuse_samples[i].at_ref);
  }
  ASSERT_EQ(a.stride_samples.size(), b.stride_samples.size());
  for (std::size_t i = 0; i < a.stride_samples.size(); ++i) {
    EXPECT_EQ(a.stride_samples[i].pc, b.stride_samples[i].pc);
    EXPECT_EQ(a.stride_samples[i].stride, b.stride_samples[i].stride);
    EXPECT_EQ(a.stride_samples[i].recurrence, b.stride_samples[i].recurrence);
    EXPECT_EQ(a.stride_samples[i].at_ref, b.stride_samples[i].at_ref);
  }
  EXPECT_EQ(a.dangling_reuse_samples, b.dangling_reuse_samples);
  EXPECT_EQ(a.dangling_by_pc, b.dangling_by_pc);
  EXPECT_EQ(a.pc_execution_counts, b.pc_execution_counts);
  EXPECT_EQ(a.total_references, b.total_references);
  EXPECT_EQ(a.sample_period, b.sample_period);
}

TEST(ProfileProgram, DifferentSeedsGiveDifferentSamplePoints) {
  const workloads::Program program = workloads::make_benchmark("soplex");
  const Profile a = profile_program(program, SamplerConfig{1000, seed()});
  const Profile b = profile_program(program, SamplerConfig{1000, seed() + 1});
  // Same workload, so similar totals — but not the same sample stream.
  const bool identical =
      a.reuse_samples.size() == b.reuse_samples.size() &&
      a.stride_samples.size() == b.stride_samples.size() &&
      a.dangling_reuse_samples == b.dangling_reuse_samples;
  EXPECT_FALSE(identical);
}

TEST(Sampler, FinishFlushesDanglingWatchesAsInfiniteReuse) {
  // A line watched but never re-touched is a last-touch: finish() must
  // count it as dangling (infinite reuse distance) exactly once, and the
  // flush must not leave the watch armed for a later reuse of the sampler.
  Sampler s = exact_sampler();
  s.observe(1, 0x1000);
  const Profile first = s.finish();
  EXPECT_EQ(first.dangling_reuse_samples, 1u);
  EXPECT_EQ(first.dangling_by_pc.at(1), 1u);
  EXPECT_TRUE(first.reuse_samples.empty());

  // Touching the same line after finish() must open a fresh watch, not
  // close the stale one from the previous window.
  s.observe(2, 0x1008);
  const Profile second = s.finish();
  EXPECT_TRUE(second.reuse_samples.empty());
  EXPECT_EQ(second.dangling_reuse_samples, 1u);
  EXPECT_EQ(second.dangling_by_pc.at(2), 1u);
  EXPECT_EQ(second.dangling_by_pc.count(1), 0u);
}

TEST(Sampler, HarvestKeepsWatchpointsAliveAcrossWindows) {
  // A reuse straddling the window boundary must close at its true global
  // distance in the later window, not flush as a phantom cold miss at the
  // boundary (the truncation bias harvest() exists to remove).
  Sampler s = exact_sampler();
  s.observe(1, 0x1000);  // arm watch on line 0x40
  s.observe(2, 0x2000);
  const Profile first = s.harvest(/*watch_timeout_refs=*/1000);
  EXPECT_EQ(first.total_references, 2u);
  EXPECT_EQ(first.dangling_reuse_samples, 0u);  // watch survives

  s.observe(3, 0x3000);
  s.observe(4, 0x1008);  // closes the watch armed in the previous window
  const Profile second = s.harvest(1000);
  EXPECT_EQ(second.total_references, 2u);
  ASSERT_GE(second.reuse_samples.size(), 1u);
  const ReuseSample& r = second.reuse_samples.front();
  EXPECT_EQ(r.first_pc, 1u);
  EXPECT_EQ(r.second_pc, 4u);
  // True global distance (2 intervening refs), wider than the window.
  EXPECT_EQ(r.distance, 2u);
  // Position is window-relative: the close landed on the 2nd ref of the
  // second window.
  EXPECT_EQ(r.at_ref, 2u);
}

TEST(Sampler, HarvestTimesOutStaleWatchesAsDangling) {
  // Streaming lines are never re-touched: without the age-based timeout
  // their cold-miss evidence would never materialize. The dangle must be
  // charged in the window where the timeout fires.
  Sampler s = exact_sampler();
  s.observe(9, 0x100000);  // armed, never re-accessed
  const Profile first = s.harvest(/*watch_timeout_refs=*/3);
  EXPECT_EQ(first.dangling_reuse_samples, 0u);  // age 0 < 3: still live

  s.observe(10, 0x200000);
  s.observe(11, 0x300000);
  s.observe(12, 0x400000);
  const Profile second = s.harvest(3);
  // pc 9's watch is now 3 refs old and flushes; the younger ones survive.
  EXPECT_EQ(second.dangling_reuse_samples, 1u);
  EXPECT_EQ(second.dangling_by_pc.at(9), 1u);
  EXPECT_EQ(second.dangling_by_pc.count(10), 0u);
}

TEST(Sampler, FlushOpenWatchesRedirectsDanglesToCaller) {
  Sampler s = exact_sampler();
  s.observe(1, 0x1000);
  s.observe(2, 0x2000);
  Profile sink;
  s.flush_open_watches(&sink);
  EXPECT_EQ(sink.dangling_reuse_samples, 2u);
  EXPECT_EQ(sink.dangling_by_pc.at(1), 1u);
  EXPECT_EQ(sink.dangling_by_pc.at(2), 1u);

  // The watches are gone: a later touch of the same lines opens fresh
  // watches instead of closing stale ones.
  s.observe(3, 0x1008);
  const Profile p = s.harvest(1000);
  EXPECT_TRUE(p.reuse_samples.empty());
}

}  // namespace
}  // namespace re::core
