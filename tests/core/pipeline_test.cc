#include "core/pipeline.hh"

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "workloads/suite.hh"

namespace re::core {
namespace {

TEST(Pipeline, MeasuresCyclesPerMemop) {
  const auto machine = sim::amd_phenom_ii();
  const auto program = workloads::make_benchmark("libquantum");
  const double delta = measure_cycles_per_memop(program, machine);
  EXPECT_GT(delta, 1.0);
  EXPECT_LT(delta, 50.0);
}

TEST(Pipeline, LibquantumGetsNonTemporalStreamPrefetches) {
  const auto machine = sim::amd_phenom_ii();
  const auto program = workloads::make_benchmark("libquantum");
  const OptimizationReport report = optimize_program(program, machine);

  ASSERT_GE(report.plans.size(), 2u);
  bool pc1 = false, pc2 = false;
  for (const PrefetchPlan& plan : report.plans) {
    if (plan.pc == 1) {
      pc1 = true;
      EXPECT_TRUE(plan.non_temporal());
      EXPECT_GE(plan.distance_bytes, 64);
    }
    if (plan.pc == 2) pc2 = true;
  }
  EXPECT_TRUE(pc1);
  EXPECT_TRUE(pc2);
}

TEST(Pipeline, NtDisabledProducesPlainPrefetches) {
  const auto machine = sim::amd_phenom_ii();
  OptimizerOptions options;
  options.enable_non_temporal = false;
  const OptimizationReport report = optimize_program(
      workloads::make_benchmark("libquantum"), machine, options);
  for (const PrefetchPlan& plan : report.plans) {
    EXPECT_FALSE(plan.non_temporal());
  }
}

TEST(Pipeline, PointerChasesAreNeverPrefetched) {
  const auto machine = sim::amd_phenom_ii();
  for (const char* name : {"mcf", "omnetpp", "xalan"}) {
    const auto program = workloads::make_benchmark(name);
    const OptimizationReport report = optimize_program(program, machine);
    for (const PrefetchPlan& plan : report.plans) {
      const auto* inst = program.find(plan.pc);
      ASSERT_NE(inst, nullptr);
      EXPECT_FALSE(
          std::holds_alternative<workloads::PointerChasePattern>(
              inst->pattern))
          << name << " pc" << plan.pc;
    }
  }
}

TEST(Pipeline, OptimizedProgramIsFasterForStreamingBenchmarks) {
  const auto machine = sim::amd_phenom_ii();
  for (const char* name : {"libquantum", "lbm", "leslie3d", "milc"}) {
    const auto program = workloads::make_benchmark(name);
    const OptimizationReport report = optimize_program(program, machine);
    const auto base = sim::run_single(machine, program, false);
    const auto opt = sim::run_single(machine, report.optimized, false);
    EXPECT_LT(opt.apps[0].cycles, base.apps[0].cycles) << name;
    // Significant win, not noise: at least 20 %.
    EXPECT_GT(static_cast<double>(base.apps[0].cycles) /
                  static_cast<double>(opt.apps[0].cycles),
              1.2)
        << name;
  }
}

TEST(Pipeline, PrefetchingNeverCatastrophicallyHurts) {
  // Paper claim: the method "never hurts performance" (mix section); in
  // isolation allow a small alpha-overhead regression at most.
  const auto machine = sim::intel_sandybridge();
  for (const std::string& name : workloads::suite_names()) {
    const auto program = workloads::make_benchmark(name);
    const OptimizationReport report = optimize_program(program, machine);
    const auto base = sim::run_single(machine, program, false);
    const auto opt = sim::run_single(machine, report.optimized, false);
    EXPECT_LT(static_cast<double>(opt.apps[0].cycles),
              static_cast<double>(base.apps[0].cycles) * 1.03)
        << name;
  }
}

TEST(Pipeline, ReportIsInternallyConsistent) {
  const auto machine = sim::intel_sandybridge();
  const auto program = workloads::make_benchmark("soplex");
  const OptimizationReport report = optimize_program(program, machine);
  EXPECT_EQ(report.benchmark, "soplex");
  EXPECT_GT(report.profile.total_references, 0u);
  // Every plan corresponds to a delinquent load with a regular stride.
  for (const PrefetchPlan& plan : report.plans) {
    const bool delinquent =
        std::any_of(report.delinquent_loads.begin(),
                    report.delinquent_loads.end(),
                    [&](const DelinquentLoad& d) { return d.pc == plan.pc; });
    EXPECT_TRUE(delinquent) << "pc" << plan.pc;
    // And the optimized program carries it.
    const auto* inst = report.optimized.find(plan.pc);
    ASSERT_NE(inst, nullptr);
    EXPECT_TRUE(inst->prefetch.has_value());
    EXPECT_EQ(inst->prefetch->distance_bytes, plan.distance_bytes);
  }
}

TEST(Pipeline, StrideCentricInsertsSuperset) {
  // Stride-centric has no cost-benefit filter: it must plan prefetches for
  // at least every regular load MDDLI picked, typically more.
  const auto machine = sim::amd_phenom_ii();
  for (const char* name : {"gcc", "omnetpp", "soplex", "xalan"}) {
    const auto program = workloads::make_benchmark(name);
    const OptimizationReport mddli = optimize_program(program, machine);
    const OptimizationReport centric =
        stride_centric_optimize(program, machine);
    EXPECT_GT(centric.plans.size(), mddli.plans.size()) << name;
    for (const PrefetchPlan& plan : mddli.plans) {
      EXPECT_TRUE(std::any_of(
          centric.plans.begin(), centric.plans.end(),
          [&](const PrefetchPlan& c) { return c.pc == plan.pc; }))
          << name << " pc" << plan.pc;
    }
  }
}

TEST(Pipeline, StrideCentricNeverUsesNt) {
  const auto machine = sim::amd_phenom_ii();
  const OptimizationReport centric = stride_centric_optimize(
      workloads::make_benchmark("libquantum"), machine);
  for (const PrefetchPlan& plan : centric.plans) {
    EXPECT_FALSE(plan.non_temporal());
  }
}

TEST(Pipeline, DeterministicAcrossRuns) {
  const auto machine = sim::amd_phenom_ii();
  const auto program = workloads::make_benchmark("cigar");
  const OptimizationReport a = optimize_program(program, machine);
  const OptimizationReport b = optimize_program(program, machine);
  ASSERT_EQ(a.plans.size(), b.plans.size());
  for (std::size_t i = 0; i < a.plans.size(); ++i) {
    EXPECT_EQ(a.plans[i].pc, b.plans[i].pc);
    EXPECT_EQ(a.plans[i].distance_bytes, b.plans[i].distance_bytes);
    EXPECT_EQ(a.plans[i].hint, b.plans[i].hint);
  }
}

TEST(Pipeline, ProfileCapLimitsWork) {
  const auto machine = sim::amd_phenom_ii();
  OptimizerOptions options;
  options.profile_max_refs = 10000;
  const OptimizationReport report = optimize_program(
      workloads::make_benchmark("milc"), machine, options);
  EXPECT_EQ(report.profile.total_references, 10000u);
}

}  // namespace
}  // namespace re::core
