#include "core/phases.hh"

#include <gtest/gtest.h>

#include "testutil.hh"

#include "sim/system.hh"
#include "workloads/suite.hh"

namespace re::core {
namespace {

using workloads::GatherPattern;
using workloads::Loop;
using workloads::Program;
using workloads::StaticInst;
using workloads::StreamPattern;

/// A program with two starkly different alternating phases: a streaming
/// phase (pc 1-2) and a gather phase (pc 3-4).
Program two_phase_program(std::uint64_t reps = 4) {
  Program p;
  p.name = "two-phase";
  p.seed = re::testing::test_seed();
  StaticInst s1, s2;
  s1.pc = 1;
  s1.pattern = StreamPattern{0, 16, 1 << 20};
  s2.pc = 2;
  s2.pattern = StreamPattern{1ULL << 32, 16, 1 << 20};
  p.loops.push_back(Loop{{s1, s2}, 100000});
  StaticInst g1, g2;
  g1.pc = 3;
  g1.pattern = GatherPattern{2ULL << 32, 1 << 20, 8};
  g2.pc = 4;
  g2.pattern = GatherPattern{3ULL << 32, 1 << 14, 8};
  p.loops.push_back(Loop{{g1, g2}, 50000});
  p.outer_reps = reps;
  return p;
}

TEST(Phases, DetectsTheTwoPhases) {
  const PhasedProfile phased =
      profile_with_phases(two_phase_program(), SamplerConfig{500, 7});
  // Two real phases; windows straddling a loop transition may form a third
  // "transition" phase (they mix both signatures).
  EXPECT_GE(phased.num_phases, 2);
  EXPECT_LE(phased.num_phases, 3);
  // 4 reps x 2 loops alternate: at least 8 segments.
  EXPECT_GE(phased.segments.size(), 8u);
  // Mid-loop positions land in distinct phases.
  EXPECT_NE(phased.phase_at(100000), phased.phase_at(250000));
}

TEST(Phases, SegmentsTileTheRunContiguously) {
  const PhasedProfile phased =
      profile_with_phases(two_phase_program(), SamplerConfig{500, 7});
  std::uint64_t expected_start = 0;
  for (const PhaseSegment& seg : phased.segments) {
    EXPECT_EQ(seg.begin_ref, expected_start);
    EXPECT_GT(seg.end_ref, seg.begin_ref);
    expected_start = seg.end_ref;
  }
  EXPECT_EQ(expected_start, phased.full.total_references);
}

TEST(Phases, UniformProgramIsOnePhase) {
  const PhasedProfile phased = profile_with_phases(
      workloads::make_benchmark("milc"), SamplerConfig{1000, 7});
  EXPECT_EQ(phased.num_phases, 1);
  EXPECT_EQ(phased.segments.size(), 1u);
}

TEST(Phases, PhaseProfilesSeparateThePcs) {
  const PhasedProfile phased =
      profile_with_phases(two_phase_program(), SamplerConfig{200, 7});
  // Identify phases by mid-loop positions (boundary windows may belong to
  // a separate transition phase).
  const int stream_phase = phased.phase_at(100000);
  const int gather_phase = phased.phase_at(250000);
  ASSERT_NE(stream_phase, gather_phase);

  // Window granularity blurs loop boundaries slightly (an 80/20 window
  // joins the majority phase), so require dominant — not perfect —
  // separation.
  auto share_of = [&](const Profile& profile, Pc a, Pc b) {
    if (profile.stride_samples.empty()) return 1.0;
    std::size_t matching = 0;
    for (const StrideSample& s : profile.stride_samples) {
      if (s.pc == a || s.pc == b) ++matching;
    }
    return static_cast<double>(matching) /
           static_cast<double>(profile.stride_samples.size());
  };
  EXPECT_GT(share_of(phased.phase_profile(stream_phase), 1, 2), 0.85);
  EXPECT_GT(share_of(phased.phase_profile(gather_phase), 3, 4), 0.85);
}

TEST(Phases, PhaseReferencesSumToTotal) {
  const PhasedProfile phased =
      profile_with_phases(two_phase_program(), SamplerConfig{500, 7});
  std::uint64_t sum = 0;
  for (int p = 0; p < phased.num_phases; ++p) {
    sum += phased.phase_references(p);
  }
  EXPECT_EQ(sum, phased.full.total_references);
}

TEST(Phases, RespectsMaxRefs) {
  const PhasedProfile phased = profile_with_phases(
      two_phase_program(), SamplerConfig{500, 7}, PhaseOptions{}, 100000);
  EXPECT_EQ(phased.full.total_references, 100000u);
}

TEST(Phases, SignatureDistanceIsAManhattanMetric) {
  const PhaseSignature a{{1, 0.5}, {2, 0.5}};
  const PhaseSignature b{{1, 0.5}, {3, 0.5}};
  const PhaseSignature c{{4, 1.0}};
  EXPECT_DOUBLE_EQ(signature_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(signature_distance(a, b), 1.0);  // pc 2 vs pc 3 swap
  EXPECT_DOUBLE_EQ(signature_distance(a, c), 2.0);  // fully disjoint
  EXPECT_DOUBLE_EQ(signature_distance(a, b), signature_distance(b, a));
  EXPECT_DOUBLE_EQ(signature_distance(a, PhaseSignature{}), 1.0);
}

TEST(Phases, NormalizeSignatureDividesByTotal) {
  const std::unordered_map<Pc, std::uint64_t> counts{{1, 30}, {2, 10}};
  const PhaseSignature sig = normalize_signature(counts, 40);
  EXPECT_DOUBLE_EQ(sig.at(1), 0.75);
  EXPECT_DOUBLE_EQ(sig.at(2), 0.25);
  EXPECT_TRUE(normalize_signature(counts, 0).empty());
}

TEST(Phases, PhaseAtBoundariesAndPastTheEnd) {
  PhasedProfile phased;
  phased.segments = {PhaseSegment{0, 0, 100}, PhaseSegment{1, 100, 250},
                     PhaseSegment{0, 250, 300}};
  phased.num_phases = 2;
  // begin_ref is inclusive, end_ref exclusive.
  EXPECT_EQ(phased.phase_at(0), 0);
  EXPECT_EQ(phased.phase_at(99), 0);
  EXPECT_EQ(phased.phase_at(100), 1);
  EXPECT_EQ(phased.phase_at(249), 1);
  EXPECT_EQ(phased.phase_at(250), 0);
  EXPECT_EQ(phased.phase_at(299), 0);
  // Past the end of the profiled stream the last segment's phase wins (a
  // longer run would most plausibly continue it).
  EXPECT_EQ(phased.phase_at(300), 0);
  EXPECT_EQ(phased.phase_at(1u << 30), 0);
}

TEST(Phases, PhaseAtWithNoSegmentsIsPhaseZero) {
  const PhasedProfile phased;
  EXPECT_EQ(phased.phase_at(0), 0);
  EXPECT_EQ(phased.phase_at(12345), 0);
}

TEST(Phases, PhaseProfileScalesDanglingCountsByReferenceShare) {
  PhasedProfile phased;
  phased.segments = {PhaseSegment{0, 0, 750}, PhaseSegment{1, 750, 1000}};
  phased.num_phases = 2;
  phased.full.total_references = 1000;
  phased.full.sample_period = 100;
  phased.full.dangling_reuse_samples = 40;
  phased.full.dangling_by_pc[7] = 40;
  phased.full.pc_execution_counts[7] = 500;

  // Phase 0 covers 75 % of references -> 75 % of the dangling mass.
  const Profile p0 = phased.phase_profile(0);
  EXPECT_EQ(p0.total_references, 750u);
  EXPECT_EQ(p0.dangling_reuse_samples, 30u);
  EXPECT_EQ(p0.dangling_by_pc.at(7), 30u);
  EXPECT_EQ(p0.sample_period, 100u);

  const Profile p1 = phased.phase_profile(1);
  EXPECT_EQ(p1.total_references, 250u);
  EXPECT_EQ(p1.dangling_reuse_samples, 10u);
  EXPECT_EQ(p1.dangling_by_pc.at(7), 10u);
}

TEST(Phases, PhaseProfilePartitionsPositionedSamples) {
  PhasedProfile phased;
  phased.segments = {PhaseSegment{0, 0, 500}, PhaseSegment{1, 500, 1000}};
  phased.num_phases = 2;
  phased.full.total_references = 1000;
  phased.full.sample_period = 100;
  phased.full.reuse_samples = {ReuseSample{1, 1, 10, 100},
                               ReuseSample{2, 2, 10, 600}};
  phased.full.stride_samples = {StrideSample{1, 64, 5, 499},
                                StrideSample{2, 8, 5, 500}};

  const Profile p0 = phased.phase_profile(0);
  ASSERT_EQ(p0.reuse_samples.size(), 1u);
  EXPECT_EQ(p0.reuse_samples[0].first_pc, 1u);
  ASSERT_EQ(p0.stride_samples.size(), 1u);
  EXPECT_EQ(p0.stride_samples[0].pc, 1u);

  const Profile p1 = phased.phase_profile(1);
  ASSERT_EQ(p1.reuse_samples.size(), 1u);
  EXPECT_EQ(p1.reuse_samples[0].first_pc, 2u);
  ASSERT_EQ(p1.stride_samples.size(), 1u);
  EXPECT_EQ(p1.stride_samples[0].pc, 2u);
}

TEST(Phases, DegenerateSinglePhaseProfileCoversEverything) {
  // A single-loop program: one phase, one segment, and the phase profile
  // must be the full profile (no samples lost to partitioning).
  const Program p = [] {
    Program q;
    q.name = "uniform";
    StaticInst s;
    s.pc = 1;
    s.pattern = StreamPattern{0, 16, 1 << 20};
    q.loops.push_back(Loop{{s}, 200000});
    return q;
  }();
  const PhasedProfile phased = profile_with_phases(p, SamplerConfig{500, 7});
  EXPECT_EQ(phased.num_phases, 1);
  ASSERT_EQ(phased.segments.size(), 1u);
  EXPECT_EQ(phased.phase_references(0), phased.full.total_references);

  const Profile sub = phased.phase_profile(0);
  EXPECT_EQ(sub.reuse_samples.size(), phased.full.reuse_samples.size());
  EXPECT_EQ(sub.stride_samples.size(), phased.full.stride_samples.size());
  EXPECT_EQ(sub.dangling_reuse_samples, phased.full.dangling_reuse_samples);
  EXPECT_EQ(sub.total_references, phased.full.total_references);
}

TEST(PhaseAwareOptimize, FindsTheStreamLoads) {
  const auto machine = sim::amd_phenom_ii();
  const PhasedOptimizationReport report =
      phase_aware_optimize(two_phase_program(), machine);
  bool pc1 = false, pc2 = false;
  for (const PrefetchPlan& plan : report.merged.plans) {
    if (plan.pc == 1) pc1 = true;
    if (plan.pc == 2) pc2 = true;
    EXPECT_NE(plan.pc, 3u);  // gathers are never prefetchable
    EXPECT_NE(plan.pc, 4u);
  }
  EXPECT_TRUE(pc1);
  EXPECT_TRUE(pc2);
}

TEST(PhaseAwareOptimize, OptimizedProgramIsFaster) {
  const auto machine = sim::amd_phenom_ii();
  const Program program = two_phase_program();
  const PhasedOptimizationReport report =
      phase_aware_optimize(program, machine);
  const auto base = sim::run_single(machine, program, false);
  const auto opt = sim::run_single(machine, report.merged.optimized, false);
  EXPECT_LT(opt.apps[0].cycles, base.apps[0].cycles);
}

TEST(PhaseAwareOptimize, MatchesGlobalPipelineOnSinglePhasePrograms) {
  const auto machine = sim::amd_phenom_ii();
  const auto program = workloads::make_benchmark("milc");
  const PhasedOptimizationReport phased =
      phase_aware_optimize(program, machine);
  const OptimizationReport global = optimize_program(program, machine);
  // Same loads chosen (distances may differ slightly through phase window
  // truncation of execution counts).
  ASSERT_EQ(phased.merged.plans.size(), global.plans.size());
  for (std::size_t i = 0; i < global.plans.size(); ++i) {
    const Pc pc = global.plans[i].pc;
    EXPECT_TRUE(std::any_of(
        phased.merged.plans.begin(), phased.merged.plans.end(),
        [&](const PrefetchPlan& p) { return p.pc == pc; }));
  }
}

TEST(PhaseAwareOptimize, PerPhasePlansAreRecorded) {
  const auto machine = sim::amd_phenom_ii();
  const PhasedOptimizationReport report =
      phase_aware_optimize(two_phase_program(), machine);
  ASSERT_EQ(report.per_phase_plans.size(),
            static_cast<std::size_t>(report.phases.num_phases));
  // The stream phase must carry plans for the stream loads.
  const int stream_phase = report.phases.phase_at(100000);
  const auto& stream_plans =
      report.per_phase_plans[static_cast<std::size_t>(stream_phase)];
  EXPECT_FALSE(stream_plans.empty());
  for (const PrefetchPlan& plan : stream_plans) {
    EXPECT_TRUE(plan.pc == 1 || plan.pc == 2);
  }
}

}  // namespace
}  // namespace re::core
