#include "core/stride_analysis.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/sampler.hh"
#include "workloads/suite.hh"

namespace re::core {
namespace {

std::vector<StrideSample> samples_of(
    std::initializer_list<std::pair<std::int64_t, RefCount>> list) {
  std::vector<StrideSample> out;
  for (const auto& [stride, recurrence] : list) {
    out.push_back(StrideSample{1, stride, recurrence});
  }
  return out;
}

std::vector<StrideSample> uniform_samples(std::int64_t stride, int count,
                                          RefCount recurrence = 8) {
  std::vector<StrideSample> out;
  for (int i = 0; i < count; ++i) {
    out.push_back(StrideSample{1, stride, recurrence});
  }
  return out;
}

TEST(StrideAnalysis, PureStrideIsRegular) {
  const StrideInfo info = analyze_strides(1, uniform_samples(16, 50));
  EXPECT_TRUE(info.regular);
  EXPECT_EQ(info.stride, 16);
  EXPECT_DOUBLE_EQ(info.dominance, 1.0);
  EXPECT_DOUBLE_EQ(info.mean_recurrence, 8.0);
}

TEST(StrideAnalysis, TooFewSamplesNotRegular) {
  const StrideInfo info = analyze_strides(1, uniform_samples(16, 4));
  EXPECT_FALSE(info.regular);
}

TEST(StrideAnalysis, SeventyPercentDominanceBoundary) {
  // 69 % in one group: irregular. 71 %: regular.
  std::vector<StrideSample> below;
  for (int i = 0; i < 69; ++i) below.push_back(StrideSample{1, 16, 8});
  for (int i = 0; i < 31; ++i) {
    below.push_back(StrideSample{1, 4000 + i * 128, 8});
  }
  EXPECT_FALSE(analyze_strides(1, below).regular);

  std::vector<StrideSample> above;
  for (int i = 0; i < 71; ++i) above.push_back(StrideSample{1, 16, 8});
  for (int i = 0; i < 29; ++i) {
    above.push_back(StrideSample{1, 4000 + i * 128, 8});
  }
  EXPECT_TRUE(analyze_strides(1, above).regular);
}

TEST(StrideAnalysis, GroupsSimilarStridesIntoLineBuckets) {
  // Strides 8, 16, 40 all fall into line-group 0 and jointly dominate.
  const auto samples = samples_of({{8, 4}, {16, 4}, {16, 4}, {40, 4},
                                   {8, 4}, {16, 4}, {16, 4}, {8, 4},
                                   {4096, 4}, {8192, 4}});
  const StrideInfo info = analyze_strides(1, samples);
  EXPECT_TRUE(info.regular);
  EXPECT_EQ(info.stride, 16);  // most frequent stride inside the group
}

TEST(StrideAnalysis, NegativeStridesGroupTogether) {
  const StrideInfo info = analyze_strides(1, uniform_samples(-24, 30));
  EXPECT_TRUE(info.regular);
  EXPECT_EQ(info.stride, -24);
}

TEST(StrideAnalysis, ZeroStrideIsNotRegular) {
  const StrideInfo info = analyze_strides(1, uniform_samples(0, 30));
  EXPECT_FALSE(info.regular);
}

TEST(StrideAnalysis, RandomStridesNotRegular) {
  std::vector<StrideSample> samples;
  std::uint64_t x = 123;
  for (int i = 0; i < 200; ++i) {
    x = x * 6364136223846793005ULL + 1;
    samples.push_back(StrideSample{
        1, static_cast<std::int64_t>(x % 100000) - 50000, 8});
  }
  EXPECT_FALSE(analyze_strides(1, samples).regular);
}

TEST(StrideAnalysis, AnalyzeAllGroupsByPc) {
  Profile profile;
  for (int i = 0; i < 20; ++i) {
    profile.stride_samples.push_back(StrideSample{1, 64, 8});
    profile.stride_samples.push_back(StrideSample{2, 0, 8});
  }
  const auto infos = analyze_all_strides(profile);
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].pc, 1u);
  EXPECT_TRUE(infos[0].regular);
  EXPECT_EQ(infos[1].pc, 2u);
  EXPECT_FALSE(infos[1].regular);
}

// --- Prefetch distance -----------------------------------------------------

StrideInfo regular_info(std::int64_t stride, double recurrence) {
  StrideInfo info;
  info.pc = 1;
  info.regular = true;
  info.stride = stride;
  info.dominance = 1.0;
  info.mean_recurrence = recurrence;
  return info;
}

TEST(PrefetchDistance, LargeStrideUsesMowryFormula) {
  // P = ceil(l / d) * stride with d = recurrence * delta.
  PrefetchDistanceParams params;
  params.latency = 200.0;
  params.cycles_per_memop = 5.0;
  params.loop_references = ~std::uint64_t{0};
  // d = 10 * 5 = 50; ceil(200/50) = 4; P = 4 * 128 = 512.
  const auto p = prefetch_distance_bytes(regular_info(128, 10.0), params);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, 512);
}

TEST(PrefetchDistance, SubLineStrideScalesByLineReuse) {
  PrefetchDistanceParams params;
  params.latency = 200.0;
  params.cycles_per_memop = 5.0;
  // stride 16: i = 4, d = 50, d*i = 200 -> ceil(200/200)=1 -> P = 64.
  const auto p = prefetch_distance_bytes(regular_info(16, 10.0), params);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, 64);
}

TEST(PrefetchDistance, NegativeStridePrefetchesBackwards) {
  PrefetchDistanceParams params;
  params.latency = 200.0;
  params.cycles_per_memop = 5.0;
  const auto p = prefetch_distance_bytes(regular_info(-128, 10.0), params);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, -512);
}

TEST(PrefetchDistance, ZeroStrideHasNoDistance) {
  StrideInfo info = regular_info(0, 10.0);
  EXPECT_FALSE(prefetch_distance_bytes(info, {}).has_value());
}

TEST(PrefetchDistance, CappedAtHalfLoopSpan) {
  PrefetchDistanceParams params;
  params.latency = 100000.0;  // absurd latency -> huge raw distance
  params.cycles_per_memop = 1.0;
  params.loop_references = 100;  // R/2 * stride = 50 * 64 = 3200
  const auto p = prefetch_distance_bytes(regular_info(64, 1.0), params);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, 3200);
}

TEST(PrefetchDistance, AtLeastOneLineAhead) {
  PrefetchDistanceParams params;
  params.latency = 1.0;  // trivially hideable
  params.cycles_per_memop = 50.0;
  const auto p = prefetch_distance_bytes(regular_info(8, 100.0), params);
  ASSERT_TRUE(p.has_value());
  EXPECT_GE(*p, static_cast<std::int64_t>(kLineSize));
}

class DistanceMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(DistanceMonotoneTest, DistanceGrowsWithLatency) {
  PrefetchDistanceParams lo, hi;
  lo.latency = GetParam();
  hi.latency = GetParam() * 4.0;
  lo.cycles_per_memop = hi.cycles_per_memop = 3.0;
  const auto p_lo = prefetch_distance_bytes(regular_info(64, 4.0), lo);
  const auto p_hi = prefetch_distance_bytes(regular_info(64, 4.0), hi);
  ASSERT_TRUE(p_lo && p_hi);
  EXPECT_GE(*p_hi, *p_lo);
}

INSTANTIATE_TEST_SUITE_P(Latencies, DistanceMonotoneTest,
                         ::testing::Values(50.0, 100.0, 200.0, 400.0));

TEST(PrefetchDistanceChecked, NamesEveryNumericHazard) {
  StrideInfo info;
  info.stride = 64;
  info.dominance = 1.0;
  info.mean_recurrence = 4.0;
  PrefetchDistanceParams params;

  // Healthy inputs give a value.
  EXPECT_TRUE(prefetch_distance_checked(info, params).has_value());

  StrideInfo zero = info;
  zero.stride = 0;
  EXPECT_EQ(prefetch_distance_checked(zero, params).status().code(),
            StatusCode::kFailedPrecondition);

  StrideInfo nan_rec = info;
  nan_rec.mean_recurrence = std::nan("");
  EXPECT_EQ(prefetch_distance_checked(nan_rec, params).status().code(),
            StatusCode::kOutOfRange);

  PrefetchDistanceParams bad = params;
  bad.latency = 0.0;
  EXPECT_FALSE(prefetch_distance_checked(info, bad).has_value());
  bad.latency = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(prefetch_distance_checked(info, bad).has_value());

  bad = params;
  bad.cycles_per_memop = 0.0;
  EXPECT_FALSE(prefetch_distance_checked(info, bad).has_value());
  bad.cycles_per_memop = std::nan("");
  EXPECT_FALSE(prefetch_distance_checked(info, bad).has_value());

  // A wild corrupt stride must not turn into a garbage distance.
  StrideInfo wild = info;
  wild.stride = std::int64_t{1} << 50;
  const auto overflow = prefetch_distance_checked(wild, params);
  EXPECT_FALSE(overflow.has_value());
  EXPECT_EQ(overflow.status().code(), StatusCode::kOutOfRange);

  // The optional wrapper mirrors the checked result.
  EXPECT_FALSE(prefetch_distance_bytes(wild, params).has_value());
  EXPECT_TRUE(prefetch_distance_bytes(info, params).has_value());
}

TEST(StrideAnalysisIntegration, SuiteStreamLoadsAreRegular) {
  // End-to-end: libquantum's two gate sweeps (pc 1 and 2, stride 16) must
  // be classified regular from real sampled profiles.
  const Profile profile = profile_program(
      workloads::make_benchmark("libquantum"), SamplerConfig{500, 3});
  const auto infos = analyze_all_strides(profile);
  int regular_streams = 0;
  for (const StrideInfo& info : infos) {
    if ((info.pc == 1 || info.pc == 2) && info.regular &&
        info.stride == 16) {
      ++regular_streams;
    }
  }
  EXPECT_EQ(regular_streams, 2);
}

TEST(StrideAnalysisIntegration, PointerChaseIsNeverRegular) {
  const Profile profile = profile_program(
      workloads::make_benchmark("omnetpp"), SamplerConfig{500, 3});
  const auto infos = analyze_all_strides(profile);
  for (const StrideInfo& info : infos) {
    if (info.pc == 1) {  // omnetpp's heap chase
      EXPECT_FALSE(info.regular);
    }
  }
}

}  // namespace
}  // namespace re::core
