#include "core/mddli.hh"

#include <gtest/gtest.h>

#include "testutil.hh"

#include "core/sampler.hh"
#include "workloads/suite.hh"

namespace re::core {
namespace {

TEST(AverageMissLatency, AllMissesServedByL2) {
  const sim::MachineConfig m = sim::amd_phenom_ii();
  // MR drops to zero at L2: every L1 miss is an L2 hit.
  EXPECT_DOUBLE_EQ(average_miss_latency(m, 0.5, 0.0, 0.0),
                   static_cast<double>(m.l2_latency));
}

TEST(AverageMissLatency, AllMissesGoToDram) {
  const sim::MachineConfig m = sim::amd_phenom_ii();
  // Flat curve: nothing served by intermediate levels.
  EXPECT_DOUBLE_EQ(average_miss_latency(m, 0.3, 0.3, 0.3),
                   static_cast<double>(m.dram_latency));
}

TEST(AverageMissLatency, MixedServiceLevels) {
  const sim::MachineConfig m = sim::amd_phenom_ii();
  // Half of L1 misses die in L2, a quarter in LLC, a quarter in DRAM.
  const double lat = average_miss_latency(m, 0.4, 0.2, 0.1);
  const double expected = 0.5 * static_cast<double>(m.l2_latency) +
                          0.25 * static_cast<double>(m.llc_latency) +
                          0.25 * static_cast<double>(m.dram_latency);
  EXPECT_NEAR(lat, expected, 1e-9);
}

TEST(AverageMissLatency, ZeroMissRatioIsZero) {
  EXPECT_DOUBLE_EQ(average_miss_latency(sim::amd_phenom_ii(), 0.0, 0.0, 0.0),
                   0.0);
}

TEST(AverageMissLatency, ClampsInvertedCurves) {
  const sim::MachineConfig m = sim::amd_phenom_ii();
  // Degenerate input (mr_l2 > mr_l1) must not produce negative fractions.
  const double lat = average_miss_latency(m, 0.1, 0.3, 0.05);
  EXPECT_GE(lat, static_cast<double>(m.l2_latency));
  EXPECT_LE(lat, static_cast<double>(m.dram_latency));
}

/// Build a profile where pc 1 streams (always misses) and pc 2 sweeps a
/// small L1-resident buffer (never misses beyond L1 warmup).
Profile two_pc_profile() {
  Sampler s(SamplerConfig{3, re::testing::test_seed()});
  for (std::uint64_t i = 0; i < 60000; ++i) {
    s.observe(1, i * kLineSize);                       // stream
    s.observe(2, (i % 16) * kLineSize + (1 << 30));    // 1 kB hot buffer
  }
  return s.finish();
}

TEST(Mddli, SelectsStreamingLoadRejectsHotLoad) {
  const Profile profile = two_pc_profile();
  const StatStack model(profile);
  const auto loads = identify_delinquent_loads(model, profile,
                                               sim::amd_phenom_ii());
  ASSERT_EQ(loads.size(), 1u);
  EXPECT_EQ(loads[0].pc, 1u);
  EXPECT_GT(loads[0].l1_miss_ratio, 0.9);
  EXPECT_NEAR(loads[0].avg_miss_latency,
              static_cast<double>(sim::amd_phenom_ii().dram_latency), 20.0);
}

TEST(Mddli, ShrunkenEffectiveLlcRaisesModeledMissCosts) {
  // pc 1 sweeps a working set that fits the full LLC but not a co-run
  // share: under contention its LLC miss ratio — and with it the average
  // miss latency the cost-benefit filter prices — must rise.
  const sim::MachineConfig m = sim::amd_phenom_ii();
  Sampler s(SamplerConfig{3, re::testing::test_seed()});
  const std::uint64_t ws_lines = m.llc.num_lines() / 2;
  for (int round = 0; round < 8; ++round) {
    for (std::uint64_t i = 0; i < ws_lines; ++i) {
      s.observe(1, i * kLineSize);
    }
  }
  const Profile profile = s.finish();
  const StatStack model(profile);

  const auto full = identify_delinquent_loads(model, profile, m);
  MddliOptions contended;
  contended.llc_effective_bytes = m.l2.size_bytes;  // far below the ws
  const auto shrunk = identify_delinquent_loads(model, profile, m, contended);

  ASSERT_FALSE(shrunk.empty());
  const double full_llc_mr = full.empty() ? 0.0 : full[0].llc_miss_ratio;
  EXPECT_GT(shrunk[0].llc_miss_ratio, full_llc_mr + 0.5);
  if (!full.empty()) {
    EXPECT_GT(shrunk[0].avg_miss_latency, full[0].avg_miss_latency);
  }
}

TEST(Mddli, HighAlphaRejectsEverything) {
  const Profile profile = two_pc_profile();
  const StatStack model(profile);
  MddliOptions options;
  options.alpha = 1e9;
  EXPECT_TRUE(identify_delinquent_loads(model, profile, sim::amd_phenom_ii(),
                                        options)
                  .empty());
}

TEST(Mddli, MinSamplesFiltersNoisyPcs) {
  Sampler s(SamplerConfig{1, re::testing::test_seed()});
  // pc 3 appears only a handful of times.
  for (int i = 0; i < 5; ++i) {
    s.observe(3, static_cast<Addr>(i) * kLineSize);
  }
  const Profile profile = s.finish();
  const StatStack model(profile);
  MddliOptions options;
  options.min_samples = 8;
  EXPECT_TRUE(identify_delinquent_loads(model, profile, sim::amd_phenom_ii(),
                                        options)
                  .empty());
}

TEST(Mddli, OrdersByEstimatedMissesDescending) {
  const workloads::Program program = workloads::make_benchmark("mcf");
  const Profile profile = profile_program(program, SamplerConfig{500, re::testing::test_seed()});
  const StatStack model(profile);
  const auto loads =
      identify_delinquent_loads(model, profile, sim::amd_phenom_ii());
  ASSERT_GE(loads.size(), 2u);
  for (std::size_t i = 1; i < loads.size(); ++i) {
    EXPECT_GE(loads[i - 1].estimated_l1_misses, loads[i].estimated_l1_misses);
  }
}

class MddliBoundaryTest : public ::testing::TestWithParam<double> {};

TEST_P(MddliBoundaryTest, ThresholdIsStrict) {
  // Synthetic single-PC profile with exact miss ratio p to DRAM: the load
  // passes iff p > alpha / dram_latency.
  const double p = GetParam();
  Sampler s(SamplerConfig{1, re::testing::test_seed()});
  const int total = 10000;
  const int misses = static_cast<int>(p * total);
  // `misses` streaming lines (dangle) + hits (immediate reuse).
  for (int i = 0; i < misses; ++i) {
    s.observe(1, static_cast<Addr>(i + 100) * kLineSize * 2);
  }
  for (int i = 0; i < total - misses; ++i) {
    s.observe(1, 8);  // same line over and over: distance 0 -> hit
  }
  const Profile profile = s.finish();
  const StatStack model(profile);
  const sim::MachineConfig m = sim::amd_phenom_ii();
  const auto loads = identify_delinquent_loads(model, profile, m);
  const double threshold = 1.0 / static_cast<double>(m.dram_latency);
  if (p > threshold * 1.5) {
    EXPECT_FALSE(loads.empty()) << "p=" << p;
  } else if (p < threshold / 1.5) {
    EXPECT_TRUE(loads.empty()) << "p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(MissRatios, MddliBoundaryTest,
                         ::testing::Values(0.0005, 0.001, 0.002, 0.01, 0.05,
                                           0.2));

}  // namespace
}  // namespace re::core
