#include "core/fault_injection.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "core/pipeline.hh"
#include "testutil.hh"
#include "sim/system.hh"
#include "workloads/dsl.hh"
#include "workloads/suite.hh"

namespace re::core {
namespace {

Profile clean_profile(const std::string& benchmark = "libquantum") {
  return profile_program(workloads::make_benchmark(benchmark),
                         SamplerConfig{1000, re::testing::test_seed()});
}

bool profiles_equal(const Profile& a, const Profile& b) {
  if (a.reuse_samples.size() != b.reuse_samples.size() ||
      a.stride_samples.size() != b.stride_samples.size() ||
      a.dangling_reuse_samples != b.dangling_reuse_samples ||
      a.total_references != b.total_references ||
      a.sample_period != b.sample_period ||
      a.dangling_by_pc != b.dangling_by_pc ||
      a.pc_execution_counts != b.pc_execution_counts) {
    return false;
  }
  for (std::size_t i = 0; i < a.reuse_samples.size(); ++i) {
    const ReuseSample& x = a.reuse_samples[i];
    const ReuseSample& y = b.reuse_samples[i];
    if (x.first_pc != y.first_pc || x.second_pc != y.second_pc ||
        x.distance != y.distance || x.at_ref != y.at_ref) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.stride_samples.size(); ++i) {
    const StrideSample& x = a.stride_samples[i];
    const StrideSample& y = b.stride_samples[i];
    if (x.pc != y.pc || x.stride != y.stride ||
        x.recurrence != y.recurrence || x.at_ref != y.at_ref) {
      return false;
    }
  }
  return true;
}

TEST(FaultInjector, ZeroRatesAreIdentity) {
  const Profile original = clean_profile();
  const FaultInjector injector{FaultConfig{}};
  const Profile injected = injector.inject(original);
  EXPECT_TRUE(profiles_equal(original, injected));
  EXPECT_EQ(injector.last_stats().total(), 0u);
}

TEST(FaultInjector, DeterministicForSameSeed) {
  const Profile original = clean_profile();
  const FaultInjector injector(FaultConfig::uniform(0.2, re::testing::test_seed()));
  EXPECT_TRUE(profiles_equal(injector.inject(original),
                             injector.inject(original)));
}

TEST(FaultInjector, DifferentSeedsPerturbDifferently) {
  const Profile original = clean_profile();
  const Profile a = FaultInjector(FaultConfig::uniform(0.2, re::testing::test_seed() + 1)).inject(original);
  const Profile b = FaultInjector(FaultConfig::uniform(0.2, re::testing::test_seed() + 2)).inject(original);
  EXPECT_FALSE(profiles_equal(a, b));
}

TEST(FaultInjector, FullDropRateRemovesEverySample) {
  const Profile original = clean_profile();
  FaultConfig config;
  config.drop_rate = 1.0;
  const FaultInjector injector(config);
  const Profile injected = injector.inject(original);
  EXPECT_TRUE(injected.reuse_samples.empty());
  EXPECT_TRUE(injected.stride_samples.empty());
  EXPECT_EQ(injector.last_stats().reuse_dropped,
            original.reuse_samples.size());
  EXPECT_EQ(injector.last_stats().stride_dropped,
            original.stride_samples.size());
}

TEST(FaultInjector, TruncationCutsTailSamplesAndWindow) {
  const Profile original = clean_profile();
  FaultConfig config;
  config.truncate_fraction = 0.5;
  const Profile injected = FaultInjector(config).inject(original);
  EXPECT_EQ(injected.total_references, original.total_references / 2);
  for (const ReuseSample& s : injected.reuse_samples) {
    EXPECT_LE(s.at_ref, injected.total_references);
  }
  for (const StrideSample& s : injected.stride_samples) {
    EXPECT_LE(s.at_ref, injected.total_references);
  }
  EXPECT_LT(injected.reuse_samples.size(), original.reuse_samples.size());
}

TEST(FaultInjector, StrideOutliersAreImplausiblyLarge) {
  const Profile original = clean_profile();
  FaultConfig config;
  config.stride_outlier_rate = 1.0;
  const Profile injected = FaultInjector(config).inject(original);
  ASSERT_FALSE(injected.stride_samples.empty());
  for (const StrideSample& s : injected.stride_samples) {
    EXPECT_GT(std::abs(s.stride), std::int64_t{1} << 44);
  }
}

TEST(FaultInjector, DuplicationInflatesSampleCounts) {
  const Profile original = clean_profile();
  FaultConfig config;
  config.duplicate_rate = 1.0;
  const Profile injected = FaultInjector(config).inject(original);
  EXPECT_EQ(injected.reuse_samples.size(), 2 * original.reuse_samples.size());
  EXPECT_EQ(injected.stride_samples.size(),
            2 * original.stride_samples.size());
}

// --- The degradation invariant itself (tentpole acceptance) ---------------

TEST(Degradation, FullSampleLossEmitsNothingAndPreservesProgram) {
  const auto machine = sim::amd_phenom_ii();
  const auto program = workloads::make_benchmark("libquantum");
  Profile profile = profile_program(program, SamplerConfig{1000, re::testing::test_seed()});

  FaultConfig config;
  config.drop_rate = 1.0;  // 100 % sample loss
  Profile faulted = FaultInjector(config).inject(profile);
  faulted.dangling_reuse_samples = 0;  // every watchpoint lost
  faulted.dangling_by_pc.clear();

  const OptimizationReport report =
      optimize_with_profile(program, std::move(faulted), machine);
  EXPECT_TRUE(report.plans.empty());
  EXPECT_TRUE(report.delinquent_loads.empty());
  // The pipeline must degrade to a semantic no-op: the "optimized" program
  // is the input program, byte-identical in the DSL.
  EXPECT_EQ(workloads::print_program(report.optimized),
            workloads::print_program(program));
  // And the suppression is visible and machine-readable.
  EXPECT_FALSE(report.degradation.empty());
  EXPECT_GE(report.degradation.count(DegradationReason::kProfileEmpty), 1u);
}

TEST(Degradation, CleanProfileProducesNoDegradationSuppressions) {
  // At zero fault rate the validator must not suppress anything the old
  // pipeline would have emitted: plans are byte-identical to
  // optimize_program's and no profile-level discards occur.
  const auto machine = sim::amd_phenom_ii();
  const auto program = workloads::make_benchmark("libquantum");
  const OptimizationReport direct = optimize_program(program, machine);
  const OptimizationReport replay = optimize_with_profile(
      program, profile_program(program, SamplerConfig{}), machine);
  ASSERT_EQ(direct.plans.size(), replay.plans.size());
  for (std::size_t i = 0; i < direct.plans.size(); ++i) {
    EXPECT_EQ(direct.plans[i].pc, replay.plans[i].pc);
    EXPECT_EQ(direct.plans[i].distance_bytes, replay.plans[i].distance_bytes);
    EXPECT_EQ(direct.plans[i].hint, replay.plans[i].hint);
  }
  EXPECT_EQ(direct.degradation.count(DegradationReason::kCorruptReuseSample),
            0u);
  EXPECT_EQ(direct.degradation.count(DegradationReason::kCorruptStrideSample),
            0u);
  EXPECT_EQ(direct.degradation.count(DegradationReason::kProfileEmpty), 0u);
}

TEST(Degradation, StrideOutliersAreSuppressedNotPrefetched) {
  // With every stride sample corrupted to a wild outlier, the pipeline must
  // not emit prefetches with absurd distances: the corrupt samples are
  // discarded by the validator, and the affected loads appear in the log.
  const auto machine = sim::amd_phenom_ii();
  const auto program = workloads::make_benchmark("libquantum");
  Profile profile = profile_program(program, SamplerConfig{1000, re::testing::test_seed()});
  FaultConfig config;
  config.stride_outlier_rate = 1.0;
  Profile faulted = FaultInjector(config).inject(profile);

  const OptimizationReport report =
      optimize_with_profile(program, std::move(faulted), machine);
  for (const PrefetchPlan& plan : report.plans) {
    EXPECT_LT(std::abs(plan.distance_bytes), std::int64_t{1} << 40);
  }
  EXPECT_GE(
      report.degradation.count(DegradationReason::kCorruptStrideSample), 1u);
}

TEST(Degradation, EverySuppressedDelinquentLoadIsLogged) {
  // Any delinquent load without a plan must have a logged reason — the
  // acceptance criterion "every suppressed prefetch appears in
  // DegradationLog".
  const auto machine = sim::intel_sandybridge();
  for (const double rate : {0.0, 0.05, 0.2, 0.5}) {
    for (const char* name : {"libquantum", "mcf", "soplex", "cigar"}) {
      const auto program = workloads::make_benchmark(name);
      Profile profile = profile_program(program, SamplerConfig{});
      Profile faulted =
          FaultInjector(FaultConfig::uniform(rate, 11)).inject(profile);
      const OptimizationReport report =
          optimize_with_profile(program, std::move(faulted), machine);
      for (const DelinquentLoad& load : report.delinquent_loads) {
        const bool planned =
            std::any_of(report.plans.begin(), report.plans.end(),
                        [&](const PrefetchPlan& p) { return p.pc == load.pc; });
        EXPECT_TRUE(planned || report.degradation.contains(load.pc))
            << name << " rate " << rate << " pc" << load.pc;
      }
    }
  }
}

TEST(Degradation, FaultedPipelineNeverHurtsBeyondEpsilon) {
  // Tier-1 smoke version of the bench_robustness_faults invariant, on two
  // representative benchmarks: whatever the faults, the optimized program
  // must stay within 1 % of the no-prefetch baseline.
  const auto machine = sim::amd_phenom_ii();
  for (const char* name : {"libquantum", "mcf"}) {
    const auto program = workloads::make_benchmark(name);
    const auto base = sim::run_single(machine, program, false);
    Profile profile = profile_program(program, SamplerConfig{});
    for (const double rate : {0.2, 0.5}) {
      Profile faulted =
          FaultInjector(FaultConfig::uniform(rate, 3)).inject(profile);
      const OptimizationReport report =
          optimize_with_profile(program, std::move(faulted), machine);
      const auto opt = sim::run_single(machine, report.optimized, false);
      EXPECT_LT(static_cast<double>(opt.apps[0].cycles),
                static_cast<double>(base.apps[0].cycles) * 1.01)
          << name << " rate " << rate;
    }
  }
}

}  // namespace
}  // namespace re::core
