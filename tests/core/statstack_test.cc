#include "core/statstack.hh"

#include <gtest/gtest.h>

#include "core/sampler.hh"
#include "support/histogram.hh"
#include "workloads/suite.hh"

namespace re::core {
namespace {

/// Profile with every access sampled over a cyclic sweep of `lines` cache
/// lines repeated `passes` times: every non-cold access has reuse distance
/// lines-1 and stack distance lines-1.
Profile cyclic_profile(std::uint64_t lines, int passes = 8) {
  Sampler s(SamplerConfig{1, 7});
  for (int p = 0; p < passes; ++p) {
    for (std::uint64_t l = 0; l < lines; ++l) {
      s.observe(1, l * kLineSize);
    }
  }
  return s.finish();
}

TEST(StackDistanceSolver, CyclicPatternSdEqualsUniqueLines) {
  // All reuse distances are K-1; the expected stack distance of a reuse
  // distance of K-1 must be exactly K-1 (every intervening access touches a
  // distinct line and survives past the window).
  const std::uint64_t K = 100;
  const Profile profile = cyclic_profile(K);
  const StatStack model(profile);
  EXPECT_NEAR(model.solver().stack_distance(K - 1),
              static_cast<double>(K - 1), 1.0);
}

TEST(StackDistanceSolver, ZeroDistanceIsZero) {
  const StatStack model(cyclic_profile(10));
  EXPECT_DOUBLE_EQ(model.solver().stack_distance(0), 0.0);
}

TEST(StackDistanceSolver, MonotoneInReuseDistance) {
  const Profile profile = cyclic_profile(64);
  const StatStack model(profile);
  double prev = -1.0;
  for (RefCount d = 0; d < 200; d += 5) {
    const double sd = model.solver().stack_distance(d);
    EXPECT_GE(sd, prev);
    EXPECT_LE(sd, static_cast<double>(d));  // SD can never exceed D
    prev = sd;
  }
}

TEST(StackDistanceSolver, InfiniteDistanceIsInfinite) {
  const StatStack model(cyclic_profile(16));
  EXPECT_TRUE(std::isinf(model.solver().stack_distance(kInfiniteDistance)));
}

TEST(StackDistanceSolver, InverseRoundTrips) {
  const Profile profile = cyclic_profile(64);
  const StatStack model(profile);
  const auto& solver = model.solver();
  for (double target : {1.0, 5.0, 20.0, 50.0}) {
    const RefCount d = solver.reuse_distance_for(target);
    ASSERT_NE(d, kInfiniteDistance);
    EXPECT_GE(solver.stack_distance(d), target);
    if (d > 0) {
      EXPECT_LT(solver.stack_distance(d - 1), target);
    }
  }
}

TEST(StackDistanceSolver, UnreachableTargetWithoutDangling) {
  // Cyclic pattern with finite distances: the integral saturates, so a huge
  // target is unreachable... unless dangling samples keep survival > 0.
  Sampler s(SamplerConfig{1, 7});
  for (int p = 0; p < 50; ++p) {
    for (std::uint64_t l = 0; l < 8; ++l) s.observe(1, l * kLineSize);
  }
  Profile profile = s.finish();
  profile.dangling_reuse_samples = 0;  // strip the last-pass danglers
  profile.dangling_by_pc.clear();
  const StatStack model(profile);
  EXPECT_EQ(model.solver().reuse_distance_for(1e9), kInfiniteDistance);
}

TEST(StackDistanceSolver, DanglingKeepsSurvivalPositive) {
  // Streaming: every sample dangles; SD(D) == D (all intervening refs are
  // unique lines).
  Sampler s(SamplerConfig{1, 7});
  for (std::uint64_t l = 0; l < 5000; ++l) s.observe(1, l * kLineSize);
  const Profile profile = s.finish();
  const StatStack model(profile);
  EXPECT_NEAR(model.solver().stack_distance(1000), 1000.0, 1e-6);
  EXPECT_EQ(model.solver().reuse_distance_for(500.0), 500u);
}

TEST(MissRatioCurve, CyclicSweepMissBoundary) {
  const std::uint64_t K = 128;
  const Profile profile = cyclic_profile(K, 16);
  const StatStack model(profile);
  const MissRatioCurve& mrc = model.pc_mrc(1);
  // Cache with K+8 lines: the working set fits -> ~0 miss ratio (only the
  // final pass's dangling samples count as misses).
  EXPECT_LT(mrc.miss_ratio_lines(K + 8), 0.08);
  // Cache with K/2 lines: LRU cyclic sweep always misses.
  EXPECT_GT(mrc.miss_ratio_lines(K / 2), 0.95);
}

TEST(MissRatioCurve, MonotoneNonIncreasingInCacheSize) {
  const Profile profile = profile_program(
      workloads::make_benchmark("mcf"), SamplerConfig{500, 11});
  const StatStack model(profile);
  const MissRatioCurve& mrc = model.application_mrc();
  double prev = 1.1;
  for (std::uint64_t bytes = 4 << 10; bytes <= 16 << 20; bytes *= 2) {
    const double mr = mrc.miss_ratio_bytes(bytes);
    EXPECT_LE(mr, prev + 1e-9);
    EXPECT_GE(mr, 0.0);
    EXPECT_LE(mr, 1.0);
    prev = mr;
  }
}

TEST(MissRatioCurve, EmptyCurveReportsZero) {
  const MissRatioCurve empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.miss_ratio_lines(100), 0.0);
}

TEST(StatStack, PcMrcForUnknownPcIsEmpty) {
  const StatStack model(cyclic_profile(16));
  EXPECT_TRUE(model.pc_mrc(999).empty());
}

TEST(StatStack, SampledPcsAreSortedAndComplete) {
  Sampler s(SamplerConfig{1, 7});
  for (int i = 0; i < 100; ++i) {
    s.observe(3, static_cast<Addr>(i % 8) * kLineSize);
    s.observe(1, 4096 + static_cast<Addr>(i % 4) * kLineSize);
  }
  const StatStack model(s.finish());
  const auto& pcs = model.sampled_pcs();
  ASSERT_EQ(pcs.size(), 2u);
  EXPECT_EQ(pcs[0], 1u);
  EXPECT_EQ(pcs[1], 3u);
}

TEST(StatStack, PureStreamPcGetsDanglingMisses) {
  // A pure stream of unique lines: all its samples dangle, so its modeled
  // miss ratio must be ~100 % at any cache size.
  Sampler s(SamplerConfig{4, 7});
  for (std::uint64_t i = 0; i < 20000; ++i) {
    s.observe(5, i * kLineSize);
  }
  const StatStack model(s.finish());
  const MissRatioCurve& mrc = model.pc_mrc(5);
  ASSERT_FALSE(mrc.empty());
  EXPECT_GT(mrc.miss_ratio_lines(1 << 20), 0.99);
}

TEST(StatStack, SubLineStrideStreamQuarterMisses) {
  // Stride-16 stream: 3 of 4 accesses reuse the line within ~0 distance
  // (hits in any cache); every 4th access opens a new line that dangles.
  Sampler s(SamplerConfig{3, 7});
  for (std::uint64_t i = 0; i < 80000; ++i) {
    s.observe(6, i * 16);
  }
  const StatStack model(s.finish());
  const MissRatioCurve& mrc = model.pc_mrc(6);
  EXPECT_NEAR(mrc.miss_ratio_lines(512), 0.25, 0.05);
  EXPECT_LT(mrc.miss_ratio_lines(4), 0.30);  // intra-line reuse survives
}

TEST(StatStack, EstimatedMissesScaleWithExecutions) {
  Sampler s(SamplerConfig{1, 7});
  for (std::uint64_t i = 0; i < 10000; ++i) s.observe(9, i * kLineSize);
  const Profile profile = s.finish();
  const StatStack model(profile);
  const double est = model.estimated_misses(9, 1024, profile);
  EXPECT_NEAR(est, 10000.0, 500.0);
}

TEST(StatStack, EmptyProfileDoesNotCrash) {
  const Profile empty;
  const StatStack model(empty);
  EXPECT_TRUE(model.sampled_pcs().empty());
  EXPECT_DOUBLE_EQ(model.application_mrc().miss_ratio_lines(100), 0.0);
}

// Property sweep: for any benchmark model, per-PC curves are valid
// probability curves and monotone in cache size.
class StatStackPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StatStackPropertyTest, PerPcCurvesAreValidAndMonotone) {
  const Profile profile = profile_program(
      workloads::make_benchmark(GetParam()), SamplerConfig{2000, 13});
  const StatStack model(profile);
  for (Pc pc : model.sampled_pcs()) {
    const MissRatioCurve& mrc = model.pc_mrc(pc);
    double prev = 1.1;
    for (std::uint64_t lines = 64; lines <= (1 << 18); lines *= 4) {
      const double mr = mrc.miss_ratio_lines(lines);
      EXPECT_GE(mr, 0.0);
      EXPECT_LE(mr, 1.0);
      EXPECT_LE(mr, prev + 1e-9);
      prev = mr;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, StatStackPropertyTest,
                         ::testing::Values("gcc", "libquantum", "mcf",
                                           "omnetpp", "cigar", "leslie3d"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace re::core
