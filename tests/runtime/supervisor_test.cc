#include "runtime/supervisor.hh"

#include <gtest/gtest.h>

#include "testutil.hh"

#include "runtime/chaos.hh"
#include "sim/memory_system.hh"
#include "workloads/program.hh"

namespace re::runtime {
namespace {

using workloads::Loop;
using workloads::Program;
using workloads::StaticInst;
using workloads::StreamPattern;

/// A long streaming program: the supervisor tests drive references by hand,
/// so the program only needs to exist as the controllers' plan source.
Program stream_program() {
  Program p;
  p.name = "stream";
  p.seed = re::testing::test_seed();
  StaticInst s;
  s.pc = 1;
  s.pattern = StreamPattern{0, 64, 8 << 20};
  p.loops.push_back(Loop{{s}, 1 << 20});
  return p;
}

/// Small windows, tight grace, no re-optimization: the tests exercise the
/// recovery state machine, not plan quality.
SupervisorOptions tight_options() {
  SupervisorOptions opts;
  opts.adaptive.window_refs = 64;
  opts.adaptive.sampler = core::SamplerConfig{16, 7};
  opts.adaptive.min_reoptimize_refs = 1 << 30;  // never optimize
  opts.heartbeat_grace_windows = 2;  // 128 refs of silence trip
  opts.backoff_base_windows = 2;
  opts.backoff_jitter = 0.25;
  opts.half_open_probe_windows = 2;
  opts.max_trips = 5;
  opts.seed = re::testing::test_seed();
  return opts;
}

/// Hand-driven harness: feeds synthetic references to the supervisor on a
/// 4-cycles-per-reference clock, one independent stream per core.
struct Harness {
  explicit Harness(int cores, const SupervisorOptions& opts = tight_options())
      : machine(sim::amd_phenom_ii()),
        program(stream_program()),
        programs(static_cast<std::size_t>(cores), &program),
        memory(machine, cores),
        supervisor(programs, machine, opts) {}

  void drive(int core, std::uint64_t refs) {
    State& state = states[static_cast<std::size_t>(core)];
    for (std::uint64_t k = 0; k < refs; ++k) {
      state.now += 4;
      supervisor.on_reference(core, 1, state.next_addr, state.now, memory);
      state.next_addr += 64;
    }
  }

  sim::MachineConfig machine;
  Program program;
  std::vector<const workloads::Program*> programs;
  sim::MemorySystem memory;
  Supervisor supervisor;
  struct State {
    Cycle now = 0;
    Addr next_addr = 0;
  };
  State states[8];
};

ChaosSchedule drop_schedule(std::uint64_t begin, std::uint64_t end,
                            int core = 0) {
  ChaosConfig config;
  config.cores = core + 1;
  return ChaosSchedule::from_episodes(
      config, {ChaosEpisode{ChaosFaultKind::WindowDrop, core, begin, end, 0}});
}

TEST(Supervisor, HealthyRunStaysArmedAndMirrorsWindows) {
  Harness h(1);
  h.drive(0, 1024);
  const DomainStats& stats = h.supervisor.domain_stats(0);
  EXPECT_EQ(stats.state, DomainState::Armed);
  EXPECT_EQ(stats.trips, 0);
  // 1024 refs / 64-ref windows = 16 closes, all validated.
  EXPECT_EQ(stats.healthy_windows, 16u);
  EXPECT_NE(h.supervisor.controller(0), nullptr);
  // Warm-up, no plans installed: the mirror stays inactive (defer to the
  // program), which is the controller's own overlay state.
  EXPECT_FALSE(h.supervisor.overlay(0)->active);
}

TEST(Supervisor, WatchdogFiresExactlyOncePerMissedHeartbeat) {
  Harness h(1);
  ChaosInjector injector(drop_schedule(100, 300));
  h.supervisor.set_chaos(&injector);
  h.drive(0, 1024);

  const DomainStats& stats = h.supervisor.domain_stats(0);
  // One silence of 200 refs against a 128-ref grace: exactly one fire, one
  // trip, one restart — and the half-open probe re-armed the domain.
  EXPECT_EQ(stats.watchdog_fires, 1u);
  EXPECT_EQ(stats.trips, 1);
  EXPECT_EQ(stats.last_trip, TripCause::Watchdog);
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.state, DomainState::Armed);
  EXPECT_GT(stats.last_recovery_windows, 0u);
  EXPECT_GT(stats.backoff_refs, 0u);
}

TEST(Supervisor, TrippedDomainHoldsTheLastKnownGoodOverlay) {
  Harness h(1);
  ChaosInjector injector(drop_schedule(100, 100000));
  h.supervisor.set_chaos(&injector);
  h.drive(0, 400);  // enough to trip once (grace 128 past ref 100)

  const DomainStats& stats = h.supervisor.domain_stats(0);
  ASSERT_GE(stats.trips, 1);
  // The suspect controller is gone, but the simulator still has an overlay
  // to consult — the domain's own last-known-good mirror.
  if (stats.state == DomainState::Backoff) {
    EXPECT_EQ(h.supervisor.controller(0), nullptr);
  }
  EXPECT_NE(h.supervisor.overlay(0), nullptr);
}

TEST(Supervisor, BackoffIsDeterministicUnderTheSeed) {
  const auto run_once = [] {
    Harness h(1);
    ChaosInjector injector(drop_schedule(100, 300));
    h.supervisor.set_chaos(&injector);
    h.drive(0, 1024);
    return h.supervisor.domain_stats(0).to_string();
  };
  // Same seed, same synthetic stream: byte-identical recovery timeline
  // (including the jittered backoff length embedded in backoff_refs).
  EXPECT_EQ(run_once(), run_once());
}

TEST(Supervisor, CircuitOpensAfterMaxTripsAndDegradesToNoPrefetch) {
  SupervisorOptions opts = tight_options();
  opts.max_trips = 3;
  Harness h(2, opts);
  // Core 0 never stops dropping; core 1 is untouched.
  ChaosInjector injector(drop_schedule(0, 1u << 30));
  h.supervisor.set_chaos(&injector);
  for (int round = 0; round < 8; ++round) {
    h.drive(0, 1024);
    h.drive(1, 1024);
  }

  const DomainStats& failed = h.supervisor.domain_stats(0);
  EXPECT_EQ(failed.state, DomainState::Open);
  EXPECT_EQ(failed.trips, 3);
  EXPECT_EQ(failed.watchdog_fires, 3u);
  EXPECT_TRUE(h.supervisor.any_open());
  EXPECT_EQ(h.supervisor.controller(0), nullptr);
  // Open = active + empty overlay: prefetching suppressed for good.
  EXPECT_TRUE(h.supervisor.overlay(0)->active);
  EXPECT_TRUE(h.supervisor.overlay(0)->plans.empty());

  // Failure domain isolation: the sibling core never noticed.
  const DomainStats& healthy = h.supervisor.domain_stats(1);
  EXPECT_EQ(healthy.state, DomainState::Armed);
  EXPECT_EQ(healthy.trips, 0);
  EXPECT_GT(healthy.healthy_windows, 0u);
  EXPECT_NE(h.supervisor.controller(1), nullptr);
}

TEST(Supervisor, HalfOpenProbeRestoresFullOperation) {
  Harness h(1);
  ChaosInjector injector(drop_schedule(100, 300));
  h.supervisor.set_chaos(&injector);
  h.drive(0, 2048);

  const DomainStats& stats = h.supervisor.domain_stats(0);
  ASSERT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.state, DomainState::Armed);
  // A re-armed domain is fully operational: live controller, windows
  // validated and mirrored again after the recovery.
  EXPECT_NE(h.supervisor.controller(0), nullptr);
  EXPECT_GT(h.supervisor.controller(0)->windows_closed(), 0u);
  EXPECT_GT(stats.healthy_windows,
            static_cast<std::uint64_t>(2));  // more than just the probe
}

TEST(Supervisor, NonMonotonicClockTripsImmediately) {
  Harness h(1);
  ChaosConfig config;
  config.cores = 1;
  ChaosInjector injector(ChaosSchedule::from_episodes(
      config,
      {ChaosEpisode{ChaosFaultKind::ClockSkew, 0, 100, 200, -5000}}));
  h.supervisor.set_chaos(&injector);
  h.drive(0, 512);

  const DomainStats& stats = h.supervisor.domain_stats(0);
  EXPECT_GE(stats.clock_faults, 1u);
  EXPECT_GE(stats.trips, 1);
  EXPECT_EQ(stats.last_trip, TripCause::ClockFault);
}

TEST(Supervisor, RunawayClockDriftTripsAtTheWindowBound) {
  Harness h(1);
  ChaosConfig config;
  config.cores = 1;
  // +20000 cycles/ref of drift across three windows: the supervisor's own
  // window meter must blow the cycles-per-memop bound at the second close.
  ChaosInjector injector(ChaosSchedule::from_episodes(
      config, {ChaosEpisode{ChaosFaultKind::ClockSkew, 0, 0, 200, 20000}}));
  h.supervisor.set_chaos(&injector);
  h.drive(0, 512);

  const DomainStats& stats = h.supervisor.domain_stats(0);
  EXPECT_GE(stats.clock_faults, 1u);
  EXPECT_EQ(stats.last_trip, TripCause::ClockFault);
}

TEST(Supervisor, StateAndCauseNamesAreStable) {
  EXPECT_STREQ(domain_state_name(DomainState::Armed), "armed");
  EXPECT_STREQ(domain_state_name(DomainState::Backoff), "backoff");
  EXPECT_STREQ(domain_state_name(DomainState::HalfOpen), "half-open");
  EXPECT_STREQ(domain_state_name(DomainState::Open), "open");
  EXPECT_STREQ(trip_cause_name(TripCause::Watchdog), "watchdog");
  EXPECT_STREQ(trip_cause_name(TripCause::ClockFault), "clock");
  EXPECT_STREQ(trip_cause_name(TripCause::PlanFault), "plan");
  EXPECT_STREQ(trip_cause_name(TripCause::GovernorFault), "governor");
}

}  // namespace
}  // namespace re::runtime
