#include "runtime/adaptive_controller.hh"

#include <gtest/gtest.h>

#include "testutil.hh"

#include "runtime/online_sampler.hh"
#include "sim/system.hh"
#include "workloads/program.hh"

namespace re::runtime {
namespace {

using workloads::HotBufferPattern;
using workloads::Loop;
using workloads::Program;
using workloads::StaticInst;
using workloads::StreamPattern;

/// Alternating streaming / L1-resident phases sharing pc 1 (the bench
/// workload in miniature).
Program alternating_program(std::uint64_t iterations = 32768,
                            std::uint64_t reps = 2) {
  Program p;
  p.name = "alt";
  p.seed = re::testing::test_seed();
  StaticInst a1, a2;
  a1.pc = 1;
  a1.pattern = StreamPattern{0, 64, 8 << 20};
  a2.pc = 2;
  a2.pattern = StreamPattern{1ULL << 32, 8, 4 << 20};
  p.loops.push_back(Loop{{a1, a2}, iterations});
  StaticInst b1, b3;
  b1.pc = 1;
  b1.pattern = HotBufferPattern{2ULL << 32, 64, 16 << 10};
  b3.pc = 3;
  b3.pattern = HotBufferPattern{3ULL << 32, 8, 16 << 10};
  p.loops.push_back(Loop{{b1, b3}, iterations});
  p.outer_reps = reps;
  return p;
}

AdaptiveOptions small_window_options() {
  AdaptiveOptions opts;
  opts.window_refs = 1024;
  opts.sampler = core::SamplerConfig{50, 42};
  opts.phases.hysteresis_windows = 1;
  opts.min_reoptimize_refs = 8192;
  return opts;
}

TEST(OnlineSampler, ClosesWindowsAtExactBoundaries) {
  OnlineSampler sampler(core::SamplerConfig{10, 1}, 100);
  int windows = 0;
  std::uint64_t refs = 0;
  for (int i = 0; i < 350; ++i) {
    ++refs;
    const auto window =
        sampler.observe(1, static_cast<Addr>(i) * 64, refs * 3);
    if (window) {
      ++windows;
      EXPECT_EQ(window->refs(), 100u);
      EXPECT_EQ(refs % 100, 0u) << "window must close on the boundary";
      // 100 refs at 3 cycles each; the first ref opens the window.
      EXPECT_NEAR(window->cycles_per_memop(), 3.0, 0.1);
      EXPECT_EQ(window->profile.pc_execution_counts.at(1), 100u);
    }
  }
  EXPECT_EQ(windows, 3);
  EXPECT_EQ(sampler.refs_in_window(), 50u);
}

TEST(OnlineSampler, MergeAccumulatesCountsAndSamples) {
  OnlineSampler sampler(core::SamplerConfig{5, 1}, 200);
  core::Profile accumulated;
  for (int i = 0; i < 400; ++i) {
    // Tight reuse loop so reuse samples actually close within a window.
    const auto window =
        sampler.observe(1, static_cast<Addr>(i % 8) * 64, i);
    if (window) merge_window_profile(accumulated, window->profile);
  }
  EXPECT_EQ(accumulated.total_references, 400u);
  EXPECT_EQ(accumulated.pc_execution_counts.at(1), 400u);
  EXPECT_GT(accumulated.reuse_samples.size(), 0u);
  EXPECT_EQ(accumulated.sample_period, 5u);
}

TEST(AdaptiveController, LearnsPhasesAndServesRevisitsFromTheCache) {
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const Program program = alternating_program();
  AdaptiveController controller(program, machine, small_window_options());
  const sim::RunResult run =
      sim::run_single_adaptive(machine, program, false, controller);
  ASSERT_GT(run.apps[0].cycles, 0u);

  const AdaptiveStats stats = controller.stats();
  EXPECT_GT(stats.windows, 0u);
  EXPECT_GE(stats.phases, 2);
  EXPECT_GE(stats.phase_switches, 2u);
  // Both phases eventually got their own optimization pass...
  EXPECT_GE(stats.reoptimizations, 2u);
  // ...and the second visit of each phase came from the plan cache.
  EXPECT_GE(stats.hot_swaps, 1u);
  EXPECT_GT(stats.cache.hits, 0u);
  EXPECT_GT(stats.measured_cycles_per_memop, 0.0);
  // One cache entry per phase: refinements replace the entry in place, so
  // re-optimizations may exceed the cache size but never the other way.
  EXPECT_EQ(controller.plan_cache().size(),
            static_cast<std::size_t>(stats.phases));
  EXPECT_GE(stats.reoptimizations, static_cast<std::uint64_t>(stats.phases));
}

TEST(AdaptiveController, OnlinePlansBeatNoPrefetchOnThisWorkload) {
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const Program program = alternating_program();
  const sim::RunResult baseline = sim::run_single(machine, program, false);

  AdaptiveController controller(program, machine, small_window_options());
  const sim::RunResult adaptive =
      sim::run_single_adaptive(machine, program, false, controller);

  // The streaming phase dominates the cycle count; prefetching it must pay
  // for the whole controller.
  EXPECT_LT(adaptive.apps[0].cycles, baseline.apps[0].cycles);
  EXPECT_GT(adaptive.apps[0].mem.sw_prefetches_issued, 0u);
}

TEST(AdaptiveController, WarmStartHotSwapsWithoutReoptimizing) {
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const Program program = alternating_program();
  const AdaptiveOptions opts = small_window_options();

  AdaptiveController cold(program, machine, opts);
  sim::run_single_adaptive(machine, program, false, cold);
  ASSERT_GE(cold.plan_cache().size(), 2u);

  AdaptiveController warm(program, machine, opts);
  auto loaded =
      PlanCache::from_json(cold.plan_cache().to_json(), opts.cache);
  ASSERT_TRUE(loaded.has_value()) << loaded.status().to_string();
  warm.plan_cache() = std::move(loaded.value());
  sim::run_single_adaptive(machine, program, false, warm);

  const AdaptiveStats stats = warm.stats();
  // Every phase is served from the preloaded cache: any pipeline run the
  // warm controller does is a refinement of cached plans, never a
  // from-scratch optimization of a novel phase.
  EXPECT_EQ(stats.reoptimizations, stats.refinements)
      << "every phase should be served from the preloaded cache";
  EXPECT_GE(stats.hot_swaps, 2u);
  EXPECT_GT(stats.cache.hit_rate(), 0.0);
}

TEST(AdaptiveController, RefinesPlansWhenMeasuredDeltaDiverges) {
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  // Pure stream: the first plans are sized with the unprefetched Δ; once
  // they start working the measured Δ drops well past the divergence
  // ratio and the controller must re-optimize in place.
  Program p;
  p.name = "stream";
  p.seed = re::testing::test_seed();
  StaticInst s1;
  s1.pc = 1;
  s1.pattern = StreamPattern{0, 64, 8 << 20};
  s1.compute_cycles = 4;
  p.loops.push_back(Loop{{s1}, 131072});

  AdaptiveController controller(p, machine, small_window_options());
  sim::run_single_adaptive(machine, p, false, controller);

  const AdaptiveStats stats = controller.stats();
  EXPECT_GE(stats.refinements, 1u);
  EXPECT_GE(stats.reoptimizations, stats.refinements + 1);
  EXPECT_FALSE(controller.active_plans().empty());
}

TEST(AdaptiveController, HoldsPreviousPlansBelowTheEvidenceFloor) {
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const Program program = alternating_program(4096, 1);
  // Evidence floor above the whole run: no phase may ever re-optimize.
  AdaptiveOptions opts = small_window_options();
  opts.min_reoptimize_refs = 1 << 30;
  AdaptiveController controller(program, machine, opts);
  sim::run_single_adaptive(machine, program, false, controller);

  const AdaptiveStats stats = controller.stats();
  EXPECT_GT(stats.windows, 0u);
  EXPECT_EQ(stats.reoptimizations, 0u);
  EXPECT_EQ(stats.hot_swaps, 0u);
  // Never installed plans: the overlay must have stayed inactive.
  EXPECT_FALSE(controller.overlay(0)->active);
}

}  // namespace
}  // namespace re::runtime
