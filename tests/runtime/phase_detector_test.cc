#include "runtime/phase_detector.hh"

#include <gtest/gtest.h>

namespace re::runtime {
namespace {

using core::PhaseSignature;

const PhaseSignature kStream{{1, 0.5}, {2, 0.5}};
const PhaseSignature kHot{{1, 0.5}, {3, 0.5}};      // distance 1.0 to kStream
const PhaseSignature kGather{{4, 0.5}, {5, 0.5}};   // distance 2.0 to both

TEST(PhaseDetector, FirstWindowCommitsWithoutASwitch) {
  PhaseDetector detector;
  const PhaseDecision d = detector.observe(kStream);
  EXPECT_EQ(d.phase, 0);
  EXPECT_TRUE(d.novel);
  EXPECT_FALSE(d.switched);
  EXPECT_EQ(detector.num_phases(), 1);
  EXPECT_EQ(detector.switches(), 0u);
}

TEST(PhaseDetector, SimilarWindowsJoinTheSamePhase) {
  PhaseDetector detector;
  detector.observe(kStream);
  // A slightly perturbed mix is within the 0.5 threshold.
  const PhaseDecision d = detector.observe({{1, 0.55}, {2, 0.45}});
  EXPECT_EQ(d.raw_phase, 0);
  EXPECT_FALSE(d.novel);
  EXPECT_EQ(detector.num_phases(), 1);
}

TEST(PhaseDetector, DistinctSignaturesFoundDistinctPhases) {
  PhaseDetector detector;
  detector.observe(kStream);
  detector.observe(kHot);
  detector.observe(kGather);
  EXPECT_EQ(detector.num_phases(), 3);
}

TEST(PhaseDetector, HysteresisAbsorbsASingleDeviantWindow) {
  PhaseDetectorOptions opts;
  opts.hysteresis_windows = 2;
  PhaseDetector detector(opts);
  detector.observe(kStream);

  // One deviant window: raw phase moves, committed phase must not.
  PhaseDecision d = detector.observe(kHot);
  EXPECT_EQ(d.raw_phase, 1);
  EXPECT_EQ(d.phase, 0);
  EXPECT_FALSE(d.switched);

  // Returning home resets the candidate streak.
  detector.observe(kStream);
  d = detector.observe(kHot);
  EXPECT_EQ(d.phase, 0) << "streak must restart after an interruption";

  // Two consecutive windows commit the switch.
  d = detector.observe(kHot);
  EXPECT_TRUE(d.switched);
  EXPECT_EQ(d.phase, 1);
  EXPECT_EQ(detector.switches(), 1u);
}

TEST(PhaseDetector, HysteresisOneSwitchesImmediately) {
  PhaseDetectorOptions opts;
  opts.hysteresis_windows = 1;
  PhaseDetector detector(opts);
  detector.observe(kStream);
  const PhaseDecision d = detector.observe(kHot);
  EXPECT_TRUE(d.switched);
  EXPECT_EQ(d.phase, 1);
}

TEST(PhaseDetector, AlternatingPhasesAreRecognizedOnRevisit) {
  PhaseDetectorOptions opts;
  opts.hysteresis_windows = 1;
  PhaseDetector detector(opts);
  for (int rep = 0; rep < 3; ++rep) {
    detector.observe(kStream);
    detector.observe(kHot);
  }
  // Revisits match existing centroids — no phase inflation.
  EXPECT_EQ(detector.num_phases(), 2);
  EXPECT_EQ(detector.switches(), 5u);
  EXPECT_EQ(detector.windows_observed(), 6u);
}

TEST(PhaseDetector, CentroidIsTheFoundingSignature) {
  PhaseDetector detector;
  detector.observe(kStream);
  detector.observe(kGather);
  EXPECT_DOUBLE_EQ(core::signature_distance(detector.centroid(0), kStream),
                   0.0);
  EXPECT_DOUBLE_EQ(core::signature_distance(detector.centroid(1), kGather),
                   0.0);
}

}  // namespace
}  // namespace re::runtime
