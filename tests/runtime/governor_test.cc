#include "runtime/governor.hh"

#include <gtest/gtest.h>

#include "sim/dram.hh"

namespace re::runtime {
namespace {

// 64 bytes/cycle channel: with 100-cycle windows, utilization is simply
// (lines moved in the window) / 100.
constexpr double kBytesPerCycle = 64.0;

sim::DramStats stats_with(std::uint64_t demand_lines,
                          std::uint64_t writeback_lines = 0) {
  sim::DramStats s;
  s.demand_lines = demand_lines;
  s.writeback_lines = writeback_lines;
  return s;
}

TEST(BandwidthGovernor, StaysNormalUnderLightLoad) {
  BandwidthGovernor governor({}, kBytesPerCycle);
  EXPECT_EQ(governor.observe_window(stats_with(10), 100), GovernorMode::Normal);
  EXPECT_EQ(governor.observe_window(stats_with(20), 200), GovernorMode::Normal);
  EXPECT_DOUBLE_EQ(governor.last_utilization(), 0.10);
  EXPECT_EQ(governor.stats().mode_changes, 0u);
}

TEST(BandwidthGovernor, EscalatesImmediatelyOnPressure) {
  BandwidthGovernor governor({}, kBytesPerCycle);
  // 70 % utilization: demote band.
  EXPECT_EQ(governor.observe_window(stats_with(70), 100), GovernorMode::Demote);
  // 90 % in the next window: escalate again, straight to suppress.
  EXPECT_EQ(governor.observe_window(stats_with(160), 200),
            GovernorMode::Suppress);
  EXPECT_EQ(governor.stats().mode_changes, 2u);
  EXPECT_EQ(governor.stats().demote_windows, 1u);
  EXPECT_EQ(governor.stats().suppress_windows, 1u);
}

TEST(BandwidthGovernor, CanJumpStraightToSuppress) {
  BandwidthGovernor governor({}, kBytesPerCycle);
  EXPECT_EQ(governor.observe_window(stats_with(95), 100),
            GovernorMode::Suppress);
}

TEST(BandwidthGovernor, DeEscalatesOneStepAfterCalmStreak) {
  GovernorOptions opts;
  opts.release_windows = 2;
  BandwidthGovernor governor(opts, kBytesPerCycle);
  std::uint64_t lines = 95;
  Cycle now = 100;
  EXPECT_EQ(governor.observe_window(stats_with(lines), now),
            GovernorMode::Suppress);

  // Two calm windows ease one step (to Demote), two more reach Normal —
  // never a direct Suppress -> Normal jump.
  const auto calm = [&]() {
    lines += 5;
    now += 100;
    return governor.observe_window(stats_with(lines), now);
  };
  EXPECT_EQ(calm(), GovernorMode::Suppress);
  EXPECT_EQ(calm(), GovernorMode::Demote);
  EXPECT_EQ(calm(), GovernorMode::Demote);
  EXPECT_EQ(calm(), GovernorMode::Normal);
}

TEST(BandwidthGovernor, PressureResetsTheCalmStreak) {
  GovernorOptions opts;
  opts.release_windows = 2;
  BandwidthGovernor governor(opts, kBytesPerCycle);
  EXPECT_EQ(governor.observe_window(stats_with(70), 100), GovernorMode::Demote);
  // calm, pressured, calm: the streak never reaches 2.
  EXPECT_EQ(governor.observe_window(stats_with(75), 200), GovernorMode::Demote);
  EXPECT_EQ(governor.observe_window(stats_with(145), 300),
            GovernorMode::Demote);
  EXPECT_EQ(governor.observe_window(stats_with(150), 400),
            GovernorMode::Demote);
}

TEST(BandwidthGovernor, WritebacksCountAgainstTheChannel) {
  BandwidthGovernor governor({}, kBytesPerCycle);
  // 40 fetched + 35 written back = 75 % utilization: demote.
  EXPECT_EQ(governor.observe_window(stats_with(40, 35), 100),
            GovernorMode::Demote);
}

TEST(BandwidthGovernor, DegenerateWindowHoldsTheMode) {
  BandwidthGovernor governor({}, kBytesPerCycle);
  EXPECT_EQ(governor.observe_window(stats_with(70), 100), GovernorMode::Demote);
  // Clock did not advance: no new evidence, keep the mode.
  EXPECT_EQ(governor.observe_window(stats_with(500), 100),
            GovernorMode::Demote);
}

TEST(BandwidthGovernor, TracksPeakUtilization) {
  BandwidthGovernor governor({}, kBytesPerCycle);
  governor.observe_window(stats_with(30), 100);
  governor.observe_window(stats_with(120), 200);
  governor.observe_window(stats_with(130), 300);
  EXPECT_DOUBLE_EQ(governor.stats().peak_utilization, 0.90);
}

TEST(BandwidthGovernor, ModeNamesAreStable) {
  EXPECT_STREQ(governor_mode_name(GovernorMode::Normal), "normal");
  EXPECT_STREQ(governor_mode_name(GovernorMode::Demote), "demote");
  EXPECT_STREQ(governor_mode_name(GovernorMode::Suppress), "suppress");
}

}  // namespace
}  // namespace re::runtime
