#include "runtime/governor.hh"

#include <gtest/gtest.h>

#include "sim/dram.hh"

namespace re::runtime {
namespace {

// 64 bytes/cycle channel: with 100-cycle windows, utilization is simply
// (lines moved in the window) / 100.
constexpr double kBytesPerCycle = 64.0;

sim::DramStats stats_with(std::uint64_t demand_lines,
                          std::uint64_t writeback_lines = 0) {
  sim::DramStats s;
  s.demand_lines = demand_lines;
  s.writeback_lines = writeback_lines;
  return s;
}

TEST(BandwidthGovernor, StaysNormalUnderLightLoad) {
  BandwidthGovernor governor({}, kBytesPerCycle);
  EXPECT_EQ(governor.observe_window(stats_with(10), 100), GovernorMode::Normal);
  EXPECT_EQ(governor.observe_window(stats_with(20), 200), GovernorMode::Normal);
  EXPECT_DOUBLE_EQ(governor.last_utilization(), 0.10);
  EXPECT_EQ(governor.stats().mode_changes, 0u);
}

TEST(BandwidthGovernor, EscalatesImmediatelyOnPressure) {
  BandwidthGovernor governor({}, kBytesPerCycle);
  // 70 % utilization: demote band.
  EXPECT_EQ(governor.observe_window(stats_with(70), 100), GovernorMode::Demote);
  // 90 % in the next window: escalate again, straight to suppress.
  EXPECT_EQ(governor.observe_window(stats_with(160), 200),
            GovernorMode::Suppress);
  EXPECT_EQ(governor.stats().mode_changes, 2u);
  EXPECT_EQ(governor.stats().demote_windows, 1u);
  EXPECT_EQ(governor.stats().suppress_windows, 1u);
}

TEST(BandwidthGovernor, CanJumpStraightToSuppress) {
  BandwidthGovernor governor({}, kBytesPerCycle);
  EXPECT_EQ(governor.observe_window(stats_with(95), 100),
            GovernorMode::Suppress);
}

TEST(BandwidthGovernor, DeEscalatesOneStepAfterCalmStreak) {
  GovernorOptions opts;
  opts.release_windows = 2;
  BandwidthGovernor governor(opts, kBytesPerCycle);
  std::uint64_t lines = 95;
  Cycle now = 100;
  EXPECT_EQ(governor.observe_window(stats_with(lines), now),
            GovernorMode::Suppress);

  // Two calm windows ease one step (to Demote), two more reach Normal —
  // never a direct Suppress -> Normal jump.
  const auto calm = [&]() {
    lines += 5;
    now += 100;
    return governor.observe_window(stats_with(lines), now);
  };
  EXPECT_EQ(calm(), GovernorMode::Suppress);
  EXPECT_EQ(calm(), GovernorMode::Demote);
  EXPECT_EQ(calm(), GovernorMode::Demote);
  EXPECT_EQ(calm(), GovernorMode::Normal);
}

TEST(BandwidthGovernor, PressureResetsTheCalmStreak) {
  GovernorOptions opts;
  opts.release_windows = 2;
  BandwidthGovernor governor(opts, kBytesPerCycle);
  EXPECT_EQ(governor.observe_window(stats_with(70), 100), GovernorMode::Demote);
  // calm, pressured, calm: the streak never reaches 2.
  EXPECT_EQ(governor.observe_window(stats_with(75), 200), GovernorMode::Demote);
  EXPECT_EQ(governor.observe_window(stats_with(145), 300),
            GovernorMode::Demote);
  EXPECT_EQ(governor.observe_window(stats_with(150), 400),
            GovernorMode::Demote);
}

TEST(BandwidthGovernor, WritebacksCountAgainstTheChannel) {
  BandwidthGovernor governor({}, kBytesPerCycle);
  // 40 fetched + 35 written back = 75 % utilization: demote.
  EXPECT_EQ(governor.observe_window(stats_with(40, 35), 100),
            GovernorMode::Demote);
}

TEST(BandwidthGovernor, DegenerateWindowHoldsTheMode) {
  BandwidthGovernor governor({}, kBytesPerCycle);
  EXPECT_EQ(governor.observe_window(stats_with(70), 100), GovernorMode::Demote);
  // Clock did not advance: no new evidence, keep the mode.
  EXPECT_EQ(governor.observe_window(stats_with(500), 100),
            GovernorMode::Demote);
}

TEST(BandwidthGovernor, TracksPeakUtilization) {
  BandwidthGovernor governor({}, kBytesPerCycle);
  governor.observe_window(stats_with(30), 100);
  governor.observe_window(stats_with(120), 200);
  governor.observe_window(stats_with(130), 300);
  EXPECT_DOUBLE_EQ(governor.stats().peak_utilization, 0.90);
}

TEST(BandwidthGovernor, ModeNamesAreStable) {
  EXPECT_STREQ(governor_mode_name(GovernorMode::Normal), "normal");
  EXPECT_STREQ(governor_mode_name(GovernorMode::Demote), "demote");
  EXPECT_STREQ(governor_mode_name(GovernorMode::Suppress), "suppress");
}

}  // namespace

// Boundary semantics: both thresholds are inclusive (utilization exactly at
// the threshold escalates). With the 64 B/cycle channel and 100-cycle
// windows, N lines put utilization at exactly N/100.
TEST(BandwidthGovernor, ExactDemoteThresholdEscalates) {
  BandwidthGovernor at({}, kBytesPerCycle);
  EXPECT_EQ(at.observe_window(stats_with(60), 100), GovernorMode::Demote);

  BandwidthGovernor below({}, kBytesPerCycle);
  EXPECT_EQ(below.observe_window(stats_with(59), 100), GovernorMode::Normal);
}

TEST(BandwidthGovernor, ExactSuppressThresholdEscalates) {
  BandwidthGovernor at({}, kBytesPerCycle);
  EXPECT_EQ(at.observe_window(stats_with(85), 100), GovernorMode::Suppress);

  BandwidthGovernor below({}, kBytesPerCycle);
  EXPECT_EQ(below.observe_window(stats_with(84), 100), GovernorMode::Demote);
}

// A window sitting exactly on the threshold of the current mode is not
// calm: it must reset the release streak, even though it does not escalate.
TEST(BandwidthGovernor, ThresholdWindowResetsTheCalmStreak) {
  BandwidthGovernor governor({}, kBytesPerCycle);  // release_windows = 2
  std::uint64_t lines = 0;
  const auto window = [&](std::uint64_t n) {
    static Cycle now = 0;
    lines += n;
    now += 100;
    return governor.observe_window(stats_with(lines), now);
  };
  EXPECT_EQ(window(70), GovernorMode::Demote);   // escalate
  EXPECT_EQ(window(10), GovernorMode::Demote);   // calm streak 1
  EXPECT_EQ(window(60), GovernorMode::Demote);   // exactly at threshold
  EXPECT_EQ(window(10), GovernorMode::Demote);   // streak restarts at 1
  EXPECT_EQ(window(10), GovernorMode::Normal);   // streak 2 -> release
}

// Re-arm edges: a degenerate window (clock did not advance) carries no
// evidence either way, so it must neither escalate, release, nor advance
// the calm streak — the release clock simply pauses.
TEST(BandwidthGovernor, DegenerateWindowDoesNotAdvanceTheCalmStreak) {
  BandwidthGovernor governor({}, kBytesPerCycle);  // release_windows = 2
  EXPECT_EQ(governor.observe_window(stats_with(70), 100), GovernorMode::Demote);
  EXPECT_EQ(governor.observe_window(stats_with(75), 200),
            GovernorMode::Demote);  // calm streak 1
  // Clock frozen: held, streak still 1.
  EXPECT_EQ(governor.observe_window(stats_with(75), 200),
            GovernorMode::Demote);
  // One more calm window completes the streak and releases.
  EXPECT_EQ(governor.observe_window(stats_with(80), 300),
            GovernorMode::Normal);
}

// release_windows below 1 is meaningless (the governor could never ease);
// the constructor clamps it so a single calm window re-arms.
TEST(BandwidthGovernor, ReleaseWindowsClampToAtLeastOne) {
  GovernorOptions opts;
  opts.release_windows = 0;
  BandwidthGovernor governor(opts, kBytesPerCycle);
  EXPECT_EQ(governor.observe_window(stats_with(70), 100), GovernorMode::Demote);
  EXPECT_EQ(governor.observe_window(stats_with(75), 200),
            GovernorMode::Normal);
}

// Full re-arm round trip: escalation and the eventual release both count as
// mode changes, and the mode windows are attributed to the mode that ruled
// the window.
TEST(BandwidthGovernor, FullReArmRoundTripCountsModeChanges) {
  GovernorOptions opts;
  opts.release_windows = 1;
  BandwidthGovernor governor(opts, kBytesPerCycle);
  EXPECT_EQ(governor.observe_window(stats_with(90), 100),
            GovernorMode::Suppress);
  EXPECT_EQ(governor.observe_window(stats_with(95), 200),
            GovernorMode::Demote);
  EXPECT_EQ(governor.observe_window(stats_with(100), 300),
            GovernorMode::Normal);
  EXPECT_EQ(governor.stats().mode_changes, 3u);
  EXPECT_EQ(governor.stats().suppress_windows, 1u);
  EXPECT_EQ(governor.stats().demote_windows, 1u);
}

// De-escalation from Suppress is one step at a time: windows in the demote
// band release to Demote, never straight to Normal.
TEST(BandwidthGovernor, SuppressReleasesThroughDemoteBand) {
  BandwidthGovernor governor({}, kBytesPerCycle);
  std::uint64_t lines = 0;
  Cycle now = 0;
  const auto window = [&](std::uint64_t n) {
    lines += n;
    now += 100;
    return governor.observe_window(stats_with(lines), now);
  };
  EXPECT_EQ(window(90), GovernorMode::Suppress);
  EXPECT_EQ(window(70), GovernorMode::Suppress);  // calm-for-suppress 1
  EXPECT_EQ(window(70), GovernorMode::Demote);    // released one step
  EXPECT_EQ(window(70), GovernorMode::Demote);    // 0.70 >= 0.60: holds
  EXPECT_EQ(window(10), GovernorMode::Demote);
  EXPECT_EQ(window(10), GovernorMode::Normal);
}

}  // namespace re::runtime
