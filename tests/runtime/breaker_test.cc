#include "runtime/breaker.hh"

#include <gtest/gtest.h>

#include <cstdint>

#include "support/rng.hh"
#include "testutil.hh"

namespace re::runtime {
namespace {

BreakerOptions no_jitter() {
  BreakerOptions opts;
  opts.backoff_base = 2;
  opts.max_backoff = 8;
  opts.tick_scale = 1;
  opts.jitter = 0.0;  // exact penalties: the arithmetic is the test subject
  opts.half_open_probes = 2;
  opts.max_trips = 3;
  return opts;
}

TEST(Breaker, StartsArmedWithNoPenalty) {
  const Breaker breaker(no_jitter(), 1);
  EXPECT_TRUE(breaker.armed());
  EXPECT_FALSE(breaker.down());
  EXPECT_EQ(breaker.consecutive_trips(), 0);
  EXPECT_EQ(breaker.backoff_remaining(), 0u);
}

TEST(Breaker, TripEntersBackoffWithExponentialPenalty) {
  Breaker breaker(no_jitter(), 1);
  breaker.trip();
  EXPECT_EQ(breaker.state(), BreakerState::Backoff);
  EXPECT_TRUE(breaker.down());
  EXPECT_EQ(breaker.backoff_remaining(), 2u);  // base << 0

  // Serve out the penalty, fault again during probation: penalty doubles.
  EXPECT_FALSE(breaker.tick(1));
  EXPECT_TRUE(breaker.tick(1));
  EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
  breaker.trip();
  EXPECT_EQ(breaker.backoff_remaining(), 4u);  // base << 1
}

TEST(Breaker, BackoffIsCappedAtMaxBackoff) {
  BreakerOptions opts = no_jitter();
  opts.max_trips = 0;  // never open: let the exponent run past the cap
  Breaker breaker(opts, 1);
  for (int t = 0; t < 6; ++t) {
    breaker.trip();
    if (t < 5) {
      while (!breaker.tick(1)) {
      }
    }
  }
  EXPECT_EQ(breaker.backoff_remaining(), 8u);  // clamped to max_backoff
}

TEST(Breaker, TickScaleStretchesThePenalty) {
  BreakerOptions opts = no_jitter();
  opts.tick_scale = 10;
  Breaker breaker(opts, 1);
  breaker.trip();
  EXPECT_EQ(breaker.backoff_remaining(), 20u);  // 2 units x 10 ticks
}

TEST(Breaker, TickReturnsTrueExactlyOnceAtExpiry) {
  Breaker breaker(no_jitter(), 1);
  breaker.trip();
  EXPECT_TRUE(breaker.tick(100));  // over-consume: saturating
  EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
  EXPECT_FALSE(breaker.tick(1));  // no-op outside Backoff
}

TEST(Breaker, CompletedProbationReArmsAndResetsTripCount) {
  Breaker breaker(no_jitter(), 1);
  breaker.trip();
  breaker.trip();  // Backoff trip chains the count without re-arming
  EXPECT_EQ(breaker.consecutive_trips(), 2);
  EXPECT_TRUE(breaker.tick(100));

  EXPECT_FALSE(breaker.probe_ok());  // 1 of 2
  EXPECT_TRUE(breaker.probe_ok());   // probation complete
  EXPECT_TRUE(breaker.armed());
  EXPECT_EQ(breaker.consecutive_trips(), 0);

  // The reset matters: the next trip pays the *base* penalty again, so a
  // component that keeps proving health never escalates toward Open.
  breaker.trip();
  EXPECT_EQ(breaker.backoff_remaining(), 2u);
}

TEST(Breaker, OpensAtMaxConsecutiveTripsAndStaysOpen) {
  Breaker breaker(no_jitter(), 1);
  breaker.trip();
  breaker.trip();
  breaker.trip();  // max_trips = 3
  EXPECT_TRUE(breaker.open());
  EXPECT_TRUE(breaker.down());

  // Terminal: neither time nor further faults move it.
  EXPECT_FALSE(breaker.tick(1000));
  EXPECT_FALSE(breaker.probe_ok());
  breaker.trip();
  EXPECT_TRUE(breaker.open());
  EXPECT_EQ(breaker.consecutive_trips(), 3);
}

TEST(Breaker, MaxTripsZeroNeverOpens) {
  BreakerOptions opts = no_jitter();
  opts.max_trips = 0;
  Breaker breaker(opts, 1);
  for (int t = 0; t < 50; ++t) breaker.trip();
  EXPECT_EQ(breaker.state(), BreakerState::Backoff);
  EXPECT_FALSE(breaker.open());
}

TEST(Breaker, JitterIsSeededAndBounded) {
  BreakerOptions opts = no_jitter();
  opts.jitter = 0.25;
  opts.backoff_base = 100;
  opts.max_backoff = 100;

  Breaker a(opts, 7);
  Breaker b(opts, 7);
  a.trip();
  b.trip();
  // Same seed, same draw order: identical penalties (the determinism the
  // chaos and serve harnesses rely on).
  EXPECT_EQ(a.backoff_remaining(), b.backoff_remaining());
  // Stretched by [1 - jitter, 1 + jitter], never below one tick.
  EXPECT_GE(a.backoff_remaining(), 75u);
  EXPECT_LE(a.backoff_remaining(), 125u);

  Breaker c(opts, 8);
  c.trip();
  EXPECT_GE(c.backoff_remaining(), 75u);
  EXPECT_LE(c.backoff_remaining(), 125u);
}

// Property sweep: seeded random event sequences (trip / tick / probe_ok in
// any order) against a shadow model of the documented state machine. The
// breaker must never reach an undeclared state, never leave Open, and only
// enter Open after exactly max_trips consecutive trips.
TEST(Breaker, RandomEventSequencesNeverLeaveTheDeclaredMachine) {
  const std::uint64_t seed = re::testing::test_seed();
  for (int round = 0; round < 64; ++round) {
    BreakerOptions opts;
    Rng rng(seed + static_cast<std::uint64_t>(round) * 0x9E3779B97F4A7C15ull);
    opts.backoff_base = 1 + rng.next(8);
    opts.max_backoff = opts.backoff_base + rng.next(32);
    opts.tick_scale = 1 + rng.next(4);
    opts.jitter = 0.25 * static_cast<double>(rng.next(3));  // 0 / .25 / .5
    opts.half_open_probes = 1 + static_cast<int>(rng.next(4));
    opts.max_trips = static_cast<int>(rng.next(6));  // 0 = never opens
    Breaker breaker(opts, seed ^ static_cast<std::uint64_t>(round));

    // Shadow model: what the header's diagram promises.
    int shadow_trips = 0;
    bool shadow_open = false;

    const std::uint64_t max_penalty_ticks = static_cast<std::uint64_t>(
        static_cast<double>(opts.max_backoff * opts.tick_scale) *
            (1.0 + opts.jitter) +
        1.0);
    for (int event = 0; event < 512; ++event) {
      const BreakerState before = breaker.state();
      switch (rng.next(4)) {
        case 0:
          breaker.trip();
          if (!shadow_open) {
            ++shadow_trips;
            if (opts.max_trips > 0 && shadow_trips >= opts.max_trips) {
              shadow_open = true;
            }
          }
          break;
        case 1:
          breaker.tick(1);
          break;
        case 2:
          breaker.tick(1 + rng.next(2 * max_penalty_ticks));
          break;
        default:
          if (breaker.probe_ok()) shadow_trips = 0;
          break;
      }
      const BreakerState state = breaker.state();

      // 1. Only declared states, and stable names for each.
      ASSERT_TRUE(state == BreakerState::Armed ||
                  state == BreakerState::Backoff ||
                  state == BreakerState::HalfOpen ||
                  state == BreakerState::Open)
          << "round " << round << " event " << event;
      ASSERT_NE(breaker_state_name(state), nullptr);

      // 2. Open is absorbing and reached only at max_trips consecutive
      //    trips (never with max_trips <= 0).
      if (before == BreakerState::Open) {
        ASSERT_EQ(state, BreakerState::Open);
      }
      ASSERT_EQ(breaker.open(), shadow_open)
          << "round " << round << " event " << event << " trips "
          << breaker.consecutive_trips();
      if (opts.max_trips <= 0) ASSERT_FALSE(breaker.open());

      // 3. down() is exactly Backoff-or-Open; accessors stay in range.
      ASSERT_EQ(breaker.down(), state == BreakerState::Backoff ||
                                    state == BreakerState::Open);
      ASSERT_LE(breaker.consecutive_trips(),
                opts.max_trips > 0 ? opts.max_trips : 512 + 1);
      ASSERT_GE(breaker.consecutive_trips(), 0);
      if (state == BreakerState::Backoff) {
        ASSERT_GE(breaker.backoff_remaining(), 1u);
        ASSERT_LE(breaker.backoff_remaining(), max_penalty_ticks);
      }
      // 4. Bookkeeping mirrors the shadow's consecutive-trip count.
      if (!shadow_open) {
        ASSERT_EQ(breaker.consecutive_trips(), shadow_trips);
      }
    }
  }
}

TEST(Breaker, StateNamesAreStable) {
  EXPECT_STREQ(breaker_state_name(BreakerState::Armed), "armed");
  EXPECT_STREQ(breaker_state_name(BreakerState::Backoff), "backoff");
  EXPECT_STREQ(breaker_state_name(BreakerState::HalfOpen), "half-open");
  EXPECT_STREQ(breaker_state_name(BreakerState::Open), "open");
}

}  // namespace
}  // namespace re::runtime
