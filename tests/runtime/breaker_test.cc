#include "runtime/breaker.hh"

#include <gtest/gtest.h>

#include <cstdint>

namespace re::runtime {
namespace {

BreakerOptions no_jitter() {
  BreakerOptions opts;
  opts.backoff_base = 2;
  opts.max_backoff = 8;
  opts.tick_scale = 1;
  opts.jitter = 0.0;  // exact penalties: the arithmetic is the test subject
  opts.half_open_probes = 2;
  opts.max_trips = 3;
  return opts;
}

TEST(Breaker, StartsArmedWithNoPenalty) {
  const Breaker breaker(no_jitter(), 1);
  EXPECT_TRUE(breaker.armed());
  EXPECT_FALSE(breaker.down());
  EXPECT_EQ(breaker.consecutive_trips(), 0);
  EXPECT_EQ(breaker.backoff_remaining(), 0u);
}

TEST(Breaker, TripEntersBackoffWithExponentialPenalty) {
  Breaker breaker(no_jitter(), 1);
  breaker.trip();
  EXPECT_EQ(breaker.state(), BreakerState::Backoff);
  EXPECT_TRUE(breaker.down());
  EXPECT_EQ(breaker.backoff_remaining(), 2u);  // base << 0

  // Serve out the penalty, fault again during probation: penalty doubles.
  EXPECT_FALSE(breaker.tick(1));
  EXPECT_TRUE(breaker.tick(1));
  EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
  breaker.trip();
  EXPECT_EQ(breaker.backoff_remaining(), 4u);  // base << 1
}

TEST(Breaker, BackoffIsCappedAtMaxBackoff) {
  BreakerOptions opts = no_jitter();
  opts.max_trips = 0;  // never open: let the exponent run past the cap
  Breaker breaker(opts, 1);
  for (int t = 0; t < 6; ++t) {
    breaker.trip();
    if (t < 5) {
      while (!breaker.tick(1)) {
      }
    }
  }
  EXPECT_EQ(breaker.backoff_remaining(), 8u);  // clamped to max_backoff
}

TEST(Breaker, TickScaleStretchesThePenalty) {
  BreakerOptions opts = no_jitter();
  opts.tick_scale = 10;
  Breaker breaker(opts, 1);
  breaker.trip();
  EXPECT_EQ(breaker.backoff_remaining(), 20u);  // 2 units x 10 ticks
}

TEST(Breaker, TickReturnsTrueExactlyOnceAtExpiry) {
  Breaker breaker(no_jitter(), 1);
  breaker.trip();
  EXPECT_TRUE(breaker.tick(100));  // over-consume: saturating
  EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
  EXPECT_FALSE(breaker.tick(1));  // no-op outside Backoff
}

TEST(Breaker, CompletedProbationReArmsAndResetsTripCount) {
  Breaker breaker(no_jitter(), 1);
  breaker.trip();
  breaker.trip();  // Backoff trip chains the count without re-arming
  EXPECT_EQ(breaker.consecutive_trips(), 2);
  EXPECT_TRUE(breaker.tick(100));

  EXPECT_FALSE(breaker.probe_ok());  // 1 of 2
  EXPECT_TRUE(breaker.probe_ok());   // probation complete
  EXPECT_TRUE(breaker.armed());
  EXPECT_EQ(breaker.consecutive_trips(), 0);

  // The reset matters: the next trip pays the *base* penalty again, so a
  // component that keeps proving health never escalates toward Open.
  breaker.trip();
  EXPECT_EQ(breaker.backoff_remaining(), 2u);
}

TEST(Breaker, OpensAtMaxConsecutiveTripsAndStaysOpen) {
  Breaker breaker(no_jitter(), 1);
  breaker.trip();
  breaker.trip();
  breaker.trip();  // max_trips = 3
  EXPECT_TRUE(breaker.open());
  EXPECT_TRUE(breaker.down());

  // Terminal: neither time nor further faults move it.
  EXPECT_FALSE(breaker.tick(1000));
  EXPECT_FALSE(breaker.probe_ok());
  breaker.trip();
  EXPECT_TRUE(breaker.open());
  EXPECT_EQ(breaker.consecutive_trips(), 3);
}

TEST(Breaker, MaxTripsZeroNeverOpens) {
  BreakerOptions opts = no_jitter();
  opts.max_trips = 0;
  Breaker breaker(opts, 1);
  for (int t = 0; t < 50; ++t) breaker.trip();
  EXPECT_EQ(breaker.state(), BreakerState::Backoff);
  EXPECT_FALSE(breaker.open());
}

TEST(Breaker, JitterIsSeededAndBounded) {
  BreakerOptions opts = no_jitter();
  opts.jitter = 0.25;
  opts.backoff_base = 100;
  opts.max_backoff = 100;

  Breaker a(opts, 7);
  Breaker b(opts, 7);
  a.trip();
  b.trip();
  // Same seed, same draw order: identical penalties (the determinism the
  // chaos and serve harnesses rely on).
  EXPECT_EQ(a.backoff_remaining(), b.backoff_remaining());
  // Stretched by [1 - jitter, 1 + jitter], never below one tick.
  EXPECT_GE(a.backoff_remaining(), 75u);
  EXPECT_LE(a.backoff_remaining(), 125u);

  Breaker c(opts, 8);
  c.trip();
  EXPECT_GE(c.backoff_remaining(), 75u);
  EXPECT_LE(c.backoff_remaining(), 125u);
}

TEST(Breaker, StateNamesAreStable) {
  EXPECT_STREQ(breaker_state_name(BreakerState::Armed), "armed");
  EXPECT_STREQ(breaker_state_name(BreakerState::Backoff), "backoff");
  EXPECT_STREQ(breaker_state_name(BreakerState::HalfOpen), "half-open");
  EXPECT_STREQ(breaker_state_name(BreakerState::Open), "open");
}

}  // namespace
}  // namespace re::runtime
