#include "runtime/scheduled_agent.hh"

#include <gtest/gtest.h>

#include "sim/memory_system.hh"

namespace re::runtime {
namespace {

using core::PhaseSegment;
using core::PrefetchPlan;
using workloads::PrefetchHint;

std::vector<PrefetchPlan> plan_for(Pc pc, std::int64_t distance) {
  return {PrefetchPlan{pc, distance, PrefetchHint::T0}};
}

/// Drive `refs` references through the agent (addresses and clock are
/// irrelevant to the scheduler — it counts references only).
void drive(ScheduledPlanAgent& agent, sim::MemorySystem& memory,
           std::uint64_t refs) {
  for (std::uint64_t i = 0; i < refs; ++i) {
    agent.on_reference(0, 1, i * 64, i * 4, memory);
  }
}

struct ScheduledAgentTest : ::testing::Test {
  sim::MachineConfig machine = sim::amd_phenom_ii();
  sim::MemorySystem memory{machine, 1};
};

TEST_F(ScheduledAgentTest, InstallsTheFirstSegmentAtConstruction) {
  ScheduledPlanAgent agent({PhaseSegment{0, 0, 100}},
                           {plan_for(7, 512)});
  const sim::PlanOverlay* overlay = agent.overlay(0);
  ASSERT_NE(overlay, nullptr);
  EXPECT_TRUE(overlay->active);
  ASSERT_NE(overlay->lookup(7), nullptr);
  EXPECT_EQ(overlay->lookup(7)->distance_bytes, 512);
  EXPECT_EQ(agent.references_seen(), 0u);
}

TEST_F(ScheduledAgentTest, EmptyScheduleLeavesTheOverlayInactive) {
  ScheduledPlanAgent agent({}, {});
  EXPECT_FALSE(agent.overlay(0)->active);
  drive(agent, memory, 10);
  EXPECT_FALSE(agent.overlay(0)->active);
  EXPECT_EQ(agent.references_seen(), 10u);
}

TEST_F(ScheduledAgentTest, SwitchesAtTheExactSegmentBoundary) {
  ScheduledPlanAgent agent(
      {PhaseSegment{0, 0, 100}, PhaseSegment{1, 100, 200}},
      {plan_for(7, 512), plan_for(9, 256)});

  drive(agent, memory, 99);
  EXPECT_NE(agent.overlay(0)->lookup(7), nullptr) << "still in segment 0";
  EXPECT_EQ(agent.overlay(0)->lookup(9), nullptr);

  // The 100th reference crosses begin_ref = 100: segment 1 installs.
  drive(agent, memory, 1);
  EXPECT_EQ(agent.overlay(0)->lookup(7), nullptr);
  ASSERT_NE(agent.overlay(0)->lookup(9), nullptr);
  EXPECT_EQ(agent.overlay(0)->lookup(9)->distance_bytes, 256);
}

TEST_F(ScheduledAgentTest, SkipsOverDegenerateSegmentsInOneStep) {
  // Segment 1 is empty (begin == end == 100): a single reference landing at
  // 100 must fall through to segment 2 immediately.
  ScheduledPlanAgent agent(
      {PhaseSegment{0, 0, 100}, PhaseSegment{1, 100, 100},
       PhaseSegment{2, 100, 200}},
      {plan_for(7, 512), plan_for(9, 256), plan_for(11, 128)});
  drive(agent, memory, 100);
  EXPECT_EQ(agent.overlay(0)->lookup(9), nullptr);
  EXPECT_NE(agent.overlay(0)->lookup(11), nullptr);
}

TEST_F(ScheduledAgentTest, OutOfRangePhaseIdYieldsActiveEmptyOverlay) {
  // Phase 5 has no plan set: the overlay must stay active (replacing the
  // program's baked-in prefetches with nothing = suppress) rather than
  // falling back to stale plans.
  ScheduledPlanAgent agent({PhaseSegment{5, 0, 100}}, {plan_for(7, 512)});
  EXPECT_TRUE(agent.overlay(0)->active);
  EXPECT_TRUE(agent.overlay(0)->plans.empty());
}

TEST_F(ScheduledAgentTest, HoldsTheLastSegmentPastTheScheduleEnd) {
  ScheduledPlanAgent agent(
      {PhaseSegment{0, 0, 50}, PhaseSegment{1, 50, 100}},
      {plan_for(7, 512), plan_for(9, 256)});
  drive(agent, memory, 500);  // far beyond the last segment's end_ref
  EXPECT_NE(agent.overlay(0)->lookup(9), nullptr);
  EXPECT_EQ(agent.references_seen(), 500u);
}

}  // namespace
}  // namespace re::runtime
