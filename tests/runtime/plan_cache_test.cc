#include "runtime/plan_cache.hh"

#include <gtest/gtest.h>

#include "workloads/program.hh"

namespace re::runtime {
namespace {

using core::PhaseSignature;
using core::PrefetchPlan;
using workloads::PrefetchHint;

const PhaseSignature kSigA{{1, 0.5}, {2, 0.5}};
const PhaseSignature kSigB{{1, 0.5}, {3, 0.5}};
const PhaseSignature kSigC{{4, 1.0}};

std::vector<PrefetchPlan> plans_for(Pc pc, std::int64_t distance,
                                    PrefetchHint hint = PrefetchHint::T0) {
  return {PrefetchPlan{pc, distance, hint}};
}

TEST(PlanCache, MissThenHit) {
  PlanCache cache;
  EXPECT_EQ(cache.lookup(kSigA), nullptr);
  cache.insert(kSigA, plans_for(1, 512));
  const auto* plans = cache.lookup(kSigA);
  ASSERT_NE(plans, nullptr);
  EXPECT_EQ((*plans)[0].pc, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

TEST(PlanCache, MatchesWithinThresholdNotBeyond) {
  PlanCache cache;
  cache.insert(kSigA, plans_for(1, 512));
  // Distance 0.2 to kSigA: matches under the default 0.5 threshold.
  EXPECT_NE(cache.lookup(PhaseSignature{{1, 0.6}, {2, 0.4}}), nullptr);
  // kSigB is at distance 1.0: a miss.
  EXPECT_EQ(cache.lookup(kSigB), nullptr);
}

TEST(PlanCache, InsertOnMatchingSignatureReplacesPlans) {
  PlanCache cache;
  cache.insert(kSigA, plans_for(1, 512));
  cache.insert(kSigA, plans_for(1, 1024));
  EXPECT_EQ(cache.size(), 1u);
  const auto* plans = cache.lookup(kSigA);
  ASSERT_NE(plans, nullptr);
  EXPECT_EQ((*plans)[0].distance_bytes, 1024);
}

TEST(PlanCache, EvictsLeastRecentlyUsed) {
  PlanCacheOptions opts;
  opts.capacity = 2;
  PlanCache cache(opts);
  cache.insert(kSigA, plans_for(1, 512));
  cache.insert(kSigB, plans_for(3, 256));
  // Touch A so B becomes the LRU victim.
  EXPECT_NE(cache.lookup(kSigA), nullptr);
  cache.insert(kSigC, plans_for(4, 128));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.lookup(kSigA), nullptr);
  EXPECT_NE(cache.lookup(kSigC), nullptr);
  EXPECT_EQ(cache.lookup(kSigB), nullptr);
}

TEST(PlanCache, JsonRoundTripPreservesEntriesAndOrder) {
  PlanCache cache;
  cache.insert(kSigA, plans_for(1, 512, PrefetchHint::NTA));
  cache.insert(kSigB, plans_for(3, -256, PrefetchHint::T2));
  cache.insert(kSigC, {});  // empty plan set = "no prefetching here"

  const std::string snapshot = cache.to_json();
  auto restored = PlanCache::from_json(snapshot);
  ASSERT_TRUE(restored.has_value()) << restored.status().to_string();
  EXPECT_EQ(restored->size(), 3u);

  // MRU order survives: C, B, A.
  auto it = restored->entries().begin();
  EXPECT_DOUBLE_EQ(core::signature_distance(it->signature, kSigC), 0.0);
  EXPECT_TRUE(it->plans.empty());
  ++it;
  EXPECT_EQ(it->plans[0].pc, 3u);
  EXPECT_EQ(it->plans[0].distance_bytes, -256);
  EXPECT_EQ(it->plans[0].hint, PrefetchHint::T2);
  ++it;
  EXPECT_EQ(it->plans[0].pc, 1u);
  EXPECT_EQ(it->plans[0].hint, PrefetchHint::NTA);

  // Stats are a property of a run, not of the snapshot.
  EXPECT_EQ(restored->stats().hits, 0u);
  EXPECT_EQ(restored->stats().insertions, 0u);

  // A second dump is byte-identical (deterministic serialization).
  EXPECT_EQ(restored->to_json(), snapshot);
}

TEST(PlanCache, FromJsonRespectsTheNewCapacity) {
  PlanCache cache;
  cache.insert(kSigA, plans_for(1, 512));
  cache.insert(kSigB, plans_for(3, 256));
  cache.insert(kSigC, plans_for(4, 128));

  PlanCacheOptions small;
  small.capacity = 2;
  auto restored = PlanCache::from_json(cache.to_json(), small);
  ASSERT_TRUE(restored.has_value());
  // Coldest entry (A) fell off; the two hottest survive.
  EXPECT_EQ(restored->size(), 2u);
  EXPECT_NE(restored->lookup(kSigC), nullptr);
  EXPECT_NE(restored->lookup(kSigB), nullptr);
  EXPECT_EQ(restored->lookup(kSigA), nullptr);
}

TEST(PlanCache, FromJsonRejectsBadDocuments) {
  const char* bad[] = {
      "",                                          // not JSON
      "[1, 2]",                                    // root not an object
      "{\"entries\": []}",                         // missing version
      "{\"version\": 99, \"entries\": []}",        // unsupported version
      "{\"version\": 1}",                          // missing entries
      "{\"version\": 1, \"entries\": [{}]}",       // entry lacks fields
      "{\"version\": 1, \"entries\": [{\"signature\": [[1]], "
      "\"plans\": []}]}",                          // malformed pair
      "{\"version\": 1, \"entries\": [{\"signature\": [[1, 0.5]], "
      "\"plans\": [{\"pc\": 1, \"distance_bytes\": 64, "
      "\"hint\": \"bogus\"}]}]}",                  // unknown hint
  };
  for (const char* text : bad) {
    const auto restored = PlanCache::from_json(text);
    EXPECT_FALSE(restored.has_value()) << "accepted: " << text;
    EXPECT_EQ(restored.status().code(), StatusCode::kDataLoss) << text;
  }
}


// Eviction under persistence: the MRU order written by to_json() must keep
// steering eviction after a reload, so a warmed snapshot behaves exactly
// like the live cache it was taken from.
TEST(PlanCache, EvictionOrderSurvivesPersistence) {
  PlanCacheOptions opts;
  opts.capacity = 2;
  PlanCache cache(opts);
  cache.insert(kSigA, plans_for(1, 512));
  cache.insert(kSigB, plans_for(3, 256));
  // Promote A: live order is now A (MRU), B (LRU).
  EXPECT_NE(cache.lookup(kSigA), nullptr);

  auto restored = PlanCache::from_json(cache.to_json(), opts);
  ASSERT_TRUE(restored.has_value());

  // Inserting into the rebuilt cache must evict B — the LRU at snapshot
  // time — not A.
  restored->insert(kSigC, plans_for(4, 128));
  EXPECT_EQ(restored->size(), 2u);
  EXPECT_EQ(restored->stats().evictions, 1u);
  EXPECT_NE(restored->lookup(kSigA), nullptr);
  EXPECT_NE(restored->lookup(kSigC), nullptr);
  EXPECT_EQ(restored->lookup(kSigB), nullptr);
}

TEST(PlanCache, SnapshotTakenAfterEvictionExcludesTheVictim) {
  PlanCacheOptions opts;
  opts.capacity = 2;
  PlanCache cache(opts);
  cache.insert(kSigA, plans_for(1, 512));
  cache.insert(kSigB, plans_for(3, 256));
  cache.insert(kSigC, plans_for(4, 128));  // evicts A
  ASSERT_EQ(cache.stats().evictions, 1u);

  auto restored = PlanCache::from_json(cache.to_json(), opts);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->size(), 2u);
  EXPECT_EQ(restored->lookup(kSigA), nullptr);
  EXPECT_NE(restored->lookup(kSigB), nullptr);
  EXPECT_NE(restored->lookup(kSigC), nullptr);
}

}  // namespace
}  // namespace re::runtime
