#include "runtime/plan_cache.hh"

#include <gtest/gtest.h>

#include <cstdio>

#include "workloads/program.hh"

namespace re::runtime {
namespace {

using core::PhaseSignature;
using core::PrefetchPlan;
using workloads::PrefetchHint;

const PhaseSignature kSigA{{1, 0.5}, {2, 0.5}};
const PhaseSignature kSigB{{1, 0.5}, {3, 0.5}};
const PhaseSignature kSigC{{4, 1.0}};

std::vector<PrefetchPlan> plans_for(Pc pc, std::int64_t distance,
                                    PrefetchHint hint = PrefetchHint::T0) {
  return {PrefetchPlan{pc, distance, hint}};
}

TEST(PlanCache, MissThenHit) {
  PlanCache cache;
  EXPECT_EQ(cache.lookup(kSigA), nullptr);
  cache.insert(kSigA, plans_for(1, 512));
  const auto* plans = cache.lookup(kSigA);
  ASSERT_NE(plans, nullptr);
  EXPECT_EQ((*plans)[0].pc, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

TEST(PlanCache, MatchesWithinThresholdNotBeyond) {
  PlanCache cache;
  cache.insert(kSigA, plans_for(1, 512));
  // Distance 0.2 to kSigA: matches under the default 0.5 threshold.
  EXPECT_NE(cache.lookup(PhaseSignature{{1, 0.6}, {2, 0.4}}), nullptr);
  // kSigB is at distance 1.0: a miss.
  EXPECT_EQ(cache.lookup(kSigB), nullptr);
}

TEST(PlanCache, InsertOnMatchingSignatureReplacesPlans) {
  PlanCache cache;
  cache.insert(kSigA, plans_for(1, 512));
  cache.insert(kSigA, plans_for(1, 1024));
  EXPECT_EQ(cache.size(), 1u);
  const auto* plans = cache.lookup(kSigA);
  ASSERT_NE(plans, nullptr);
  EXPECT_EQ((*plans)[0].distance_bytes, 1024);
}

TEST(PlanCache, EvictsLeastRecentlyUsed) {
  PlanCacheOptions opts;
  opts.capacity = 2;
  PlanCache cache(opts);
  cache.insert(kSigA, plans_for(1, 512));
  cache.insert(kSigB, plans_for(3, 256));
  // Touch A so B becomes the LRU victim.
  EXPECT_NE(cache.lookup(kSigA), nullptr);
  cache.insert(kSigC, plans_for(4, 128));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.lookup(kSigA), nullptr);
  EXPECT_NE(cache.lookup(kSigC), nullptr);
  EXPECT_EQ(cache.lookup(kSigB), nullptr);
}

TEST(PlanCache, JsonRoundTripPreservesEntriesAndOrder) {
  PlanCache cache;
  cache.insert(kSigA, plans_for(1, 512, PrefetchHint::NTA));
  cache.insert(kSigB, plans_for(3, -256, PrefetchHint::T2));
  cache.insert(kSigC, {});  // empty plan set = "no prefetching here"

  const std::string snapshot = cache.to_json();
  auto restored = PlanCache::from_json(snapshot);
  ASSERT_TRUE(restored.has_value()) << restored.status().to_string();
  EXPECT_EQ(restored->size(), 3u);

  // MRU order survives: C, B, A.
  auto it = restored->entries().begin();
  EXPECT_DOUBLE_EQ(core::signature_distance(it->signature, kSigC), 0.0);
  EXPECT_TRUE(it->plans.empty());
  ++it;
  EXPECT_EQ(it->plans[0].pc, 3u);
  EXPECT_EQ(it->plans[0].distance_bytes, -256);
  EXPECT_EQ(it->plans[0].hint, PrefetchHint::T2);
  ++it;
  EXPECT_EQ(it->plans[0].pc, 1u);
  EXPECT_EQ(it->plans[0].hint, PrefetchHint::NTA);

  // Stats are a property of a run, not of the snapshot.
  EXPECT_EQ(restored->stats().hits, 0u);
  EXPECT_EQ(restored->stats().insertions, 0u);

  // A second dump is byte-identical (deterministic serialization).
  EXPECT_EQ(restored->to_json(), snapshot);
}

TEST(PlanCache, FromJsonRespectsTheNewCapacity) {
  PlanCache cache;
  cache.insert(kSigA, plans_for(1, 512));
  cache.insert(kSigB, plans_for(3, 256));
  cache.insert(kSigC, plans_for(4, 128));

  PlanCacheOptions small;
  small.capacity = 2;
  auto restored = PlanCache::from_json(cache.to_json(), small);
  ASSERT_TRUE(restored.has_value());
  // Coldest entry (A) fell off; the two hottest survive.
  EXPECT_EQ(restored->size(), 2u);
  EXPECT_NE(restored->lookup(kSigC), nullptr);
  EXPECT_NE(restored->lookup(kSigB), nullptr);
  EXPECT_EQ(restored->lookup(kSigA), nullptr);
}

TEST(PlanCache, FromJsonRejectsBadDocuments) {
  const char* bad[] = {
      "",                                          // not JSON
      "[1, 2]",                                    // root not an object
      "{\"entries\": []}",                         // missing version
      "{\"version\": 99, \"entries\": []}",        // unsupported version
      "{\"version\": 1}",                          // missing entries
      "{\"version\": 1, \"entries\": [{}]}",       // entry lacks fields
      "{\"version\": 1, \"entries\": [{\"signature\": [[1]], "
      "\"plans\": []}]}",                          // malformed pair
      "{\"version\": 1, \"entries\": [{\"signature\": [[1, 0.5]], "
      "\"plans\": [{\"pc\": 1, \"distance_bytes\": 64, "
      "\"hint\": \"bogus\"}]}]}",                  // unknown hint
  };
  for (const char* text : bad) {
    const auto restored = PlanCache::from_json(text);
    EXPECT_FALSE(restored.has_value()) << "accepted: " << text;
    EXPECT_EQ(restored.status().code(), StatusCode::kDataLoss) << text;
  }
}


// Eviction under persistence: the MRU order written by to_json() must keep
// steering eviction after a reload, so a warmed snapshot behaves exactly
// like the live cache it was taken from.
TEST(PlanCache, EvictionOrderSurvivesPersistence) {
  PlanCacheOptions opts;
  opts.capacity = 2;
  PlanCache cache(opts);
  cache.insert(kSigA, plans_for(1, 512));
  cache.insert(kSigB, plans_for(3, 256));
  // Promote A: live order is now A (MRU), B (LRU).
  EXPECT_NE(cache.lookup(kSigA), nullptr);

  auto restored = PlanCache::from_json(cache.to_json(), opts);
  ASSERT_TRUE(restored.has_value());

  // Inserting into the rebuilt cache must evict B — the LRU at snapshot
  // time — not A.
  restored->insert(kSigC, plans_for(4, 128));
  EXPECT_EQ(restored->size(), 2u);
  EXPECT_EQ(restored->stats().evictions, 1u);
  EXPECT_NE(restored->lookup(kSigA), nullptr);
  EXPECT_NE(restored->lookup(kSigC), nullptr);
  EXPECT_EQ(restored->lookup(kSigB), nullptr);
}

TEST(PlanCache, FromJsonRejectsDuplicateSignaturePcs) {
  const char* text =
      "{\"version\": 1, \"entries\": [{\"signature\": "
      "[[1, 0.5], [1, 0.5]], \"plans\": []}]}";
  const auto restored = PlanCache::from_json(text);
  ASSERT_FALSE(restored.has_value());
  EXPECT_EQ(restored.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(restored.status().message().find("duplicate signature pc"),
            std::string::npos)
      << restored.status().to_string();
}

TEST(PlanCache, FromJsonRejectsDuplicatePlanPcs) {
  const char* text =
      "{\"version\": 1, \"entries\": [{\"signature\": [[1, 1.0]], "
      "\"plans\": ["
      "{\"pc\": 5, \"distance_bytes\": 64, \"hint\": \"t0\"}, "
      "{\"pc\": 5, \"distance_bytes\": 128, \"hint\": \"nta\"}]}]}";
  const auto restored = PlanCache::from_json(text);
  ASSERT_FALSE(restored.has_value());
  EXPECT_EQ(restored.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(restored.status().message().find("duplicate plan pc"),
            std::string::npos)
      << restored.status().to_string();
}

// ---------------------------------------------------------------------------
// Crash-consistent journal (v2).

PlanCache journal_fixture() {
  PlanCache cache;
  cache.insert(kSigA, plans_for(1, 512, PrefetchHint::NTA));
  cache.insert(kSigB, plans_for(3, -256, PrefetchHint::T2));
  cache.insert(kSigC, {});
  return cache;
}

TEST(PlanCacheJournal, RoundTripPreservesEntriesOrderAndBytes) {
  const PlanCache cache = journal_fixture();
  const std::string journal = cache.to_journal();

  auto loaded = PlanCache::from_journal(journal);
  ASSERT_TRUE(loaded.has_value()) << loaded.status().to_string();
  EXPECT_EQ(loaded->loaded, 3u);
  EXPECT_EQ(loaded->quarantined, 0u);
  EXPECT_EQ(loaded->missing, 0u);
  EXPECT_FALSE(loaded->degraded());

  // MRU order survives: C (empty plans), then B, then A.
  auto it = loaded->cache.entries().begin();
  EXPECT_TRUE(it->plans.empty());
  ++it;
  EXPECT_EQ(it->plans[0].pc, 3u);
  EXPECT_EQ(it->plans[0].distance_bytes, -256);
  ++it;
  EXPECT_EQ(it->plans[0].hint, PrefetchHint::NTA);

  // Deterministic serialization: a re-dump is byte-identical.
  EXPECT_EQ(loaded->cache.to_journal(), journal);
}

TEST(PlanCacheJournal, QuarantinesAFlippedByteAndKeepsTheRest) {
  const std::string journal = journal_fixture().to_journal();
  // Corrupt a digit inside the *second* entry line (the first line is the
  // header).
  const std::size_t header_end = journal.find('\n') + 1;
  const std::size_t second_entry = journal.find('\n', header_end) + 1;
  std::string damaged = journal;
  const std::size_t victim = journal.find("distance_bytes", second_entry);
  ASSERT_NE(victim, std::string::npos);
  damaged[victim + 17] ^= 0x01;  // mutate a payload byte under the CRC

  auto loaded = PlanCache::from_journal(damaged);
  ASSERT_TRUE(loaded.has_value()) << loaded.status().to_string();
  EXPECT_EQ(loaded->quarantined + loaded->missing, 1u);
  EXPECT_EQ(loaded->loaded, 2u);
  EXPECT_TRUE(loaded->degraded());
  ASSERT_FALSE(loaded->quarantine_log.empty());
  EXPECT_NE(loaded->quarantine_log[0].find("line 3"), std::string::npos)
      << loaded->quarantine_log[0];
}

TEST(PlanCacheJournal, ValueMutationThatStillParsesFailsTheCrc) {
  const std::string journal = journal_fixture().to_journal();
  // Change "-256" to "-257": valid JSON, valid fields — only the CRC can
  // catch it.
  std::string damaged = journal;
  const std::size_t victim = damaged.find("-256");
  ASSERT_NE(victim, std::string::npos);
  damaged[victim + 3] = '7';

  auto loaded = PlanCache::from_journal(damaged);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->quarantined, 1u);
  ASSERT_FALSE(loaded->quarantine_log.empty());
  EXPECT_NE(loaded->quarantine_log[0].find("crc mismatch"),
            std::string::npos);
}

TEST(PlanCacheJournal, CountsEntriesLostToATruncatedTail) {
  const std::string journal = journal_fixture().to_journal();
  // Drop the final entry line entirely (truncate at its leading newline).
  const std::size_t last_line =
      journal.rfind('\n', journal.size() - 2) + 1;
  auto loaded = PlanCache::from_journal(journal.substr(0, last_line));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->loaded, 2u);
  EXPECT_EQ(loaded->quarantined, 0u);
  EXPECT_EQ(loaded->missing, 1u);
  ASSERT_FALSE(loaded->quarantine_log.empty());
  EXPECT_NE(loaded->quarantine_log.back().find("truncated"),
            std::string::npos);
}

TEST(PlanCacheJournal, RefusesABrokenHeaderOutright) {
  const std::string journal = journal_fixture().to_journal();
  // Wrong magic: the whole file is untrusted — no partial recovery.
  std::string damaged = journal;
  const std::size_t magic = damaged.find("re-plan-cache");
  ASSERT_NE(magic, std::string::npos);
  damaged[magic] = 'x';
  const auto loaded = PlanCache::from_journal(damaged);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(PlanCacheJournal, LoadSniffsJournalAndLegacyFormats) {
  const PlanCache cache = journal_fixture();

  auto from_journal = PlanCache::load(cache.to_journal());
  ASSERT_TRUE(from_journal.has_value());
  EXPECT_EQ(from_journal->loaded, 3u);

  auto from_legacy = PlanCache::load(cache.to_json());
  ASSERT_TRUE(from_legacy.has_value());
  EXPECT_EQ(from_legacy->loaded, 3u);
  EXPECT_FALSE(from_legacy->degraded());

  // The rebuilt caches agree entry for entry.
  EXPECT_EQ(from_journal->cache.to_journal(), from_legacy->cache.to_journal());
}

TEST(PlanCacheJournal, SaveAndLoadFileRoundTripThroughDisk) {
  const std::string path = "plan_cache_journal_test.json";
  const PlanCache cache = journal_fixture();
  ASSERT_TRUE(cache.save(path).ok());

  auto loaded = PlanCache::load_file(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.status().to_string();
  EXPECT_EQ(loaded->loaded, 3u);
  EXPECT_EQ(loaded->cache.to_journal(), cache.to_journal());
  std::remove(path.c_str());

  // A missing file is unavailable, not data loss: callers may start cold.
  const auto missing = PlanCache::load_file("plan_cache_no_such_file.json");
  ASSERT_FALSE(missing.has_value());
  EXPECT_EQ(missing.status().code(), StatusCode::kUnavailable);
}

TEST(PlanCacheJournal, TruncatedMidRecordRecoversPriorEntriesAndAppends) {
  const std::string journal = journal_fixture().to_journal();
  // Tear the final record mid-line — the bytes a crash during an append
  // leaves behind (not a clean truncation at a record boundary).
  const std::size_t last_line = journal.rfind('\n', journal.size() - 2) + 1;
  const std::size_t torn = last_line + (journal.size() - last_line) / 2;
  ASSERT_GT(torn, last_line);
  ASSERT_LT(torn, journal.size() - 1);

  auto loaded = PlanCache::from_journal(journal.substr(0, torn));
  ASSERT_TRUE(loaded.has_value()) << loaded.status().to_string();
  EXPECT_EQ(loaded->loaded, 2u);
  EXPECT_EQ(loaded->quarantined + loaded->missing, 1u);
  EXPECT_TRUE(loaded->degraded());
  // MRU-first journal: the torn final line was kSigA's (LRU) record.
  EXPECT_NE(loaded->cache.lookup(kSigB), nullptr);
  EXPECT_NE(loaded->cache.lookup(kSigC), nullptr);
  EXPECT_EQ(loaded->cache.lookup(kSigA), nullptr);

  // The restart path compacts the recovered cache and keeps appending:
  // the loader accepts appended records beyond the header's promised
  // count, so the grown journal loads whole.
  std::string grown = loaded->cache.to_journal();
  PlanCache::Entry fresh;
  fresh.signature = PhaseSignature{{9, 1.0}};
  fresh.plans = plans_for(9, 128);
  grown += PlanCache::journal_record(fresh);

  auto reloaded = PlanCache::from_journal(grown);
  ASSERT_TRUE(reloaded.has_value()) << reloaded.status().to_string();
  EXPECT_EQ(reloaded->loaded, 3u);
  EXPECT_EQ(reloaded->quarantined, 0u);
  EXPECT_FALSE(reloaded->degraded());
  EXPECT_NE(reloaded->cache.lookup(fresh.signature), nullptr);
}

TEST(PlanCache, SnapshotTakenAfterEvictionExcludesTheVictim) {
  PlanCacheOptions opts;
  opts.capacity = 2;
  PlanCache cache(opts);
  cache.insert(kSigA, plans_for(1, 512));
  cache.insert(kSigB, plans_for(3, 256));
  cache.insert(kSigC, plans_for(4, 128));  // evicts A
  ASSERT_EQ(cache.stats().evictions, 1u);

  auto restored = PlanCache::from_json(cache.to_json(), opts);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->size(), 2u);
  EXPECT_EQ(restored->lookup(kSigA), nullptr);
  EXPECT_NE(restored->lookup(kSigB), nullptr);
  EXPECT_NE(restored->lookup(kSigC), nullptr);
}

}  // namespace
}  // namespace re::runtime
