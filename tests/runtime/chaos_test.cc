#include "runtime/chaos.hh"

#include <gtest/gtest.h>

#include "testutil.hh"

#include "workloads/program.hh"

namespace re::runtime {
namespace {

using workloads::HotBufferPattern;
using workloads::Loop;
using workloads::Program;
using workloads::StaticInst;
using workloads::StreamPattern;

Program mix_program(std::uint64_t seed_offset) {
  Program p;
  p.name = "chaos-app-" + std::to_string(seed_offset);
  p.seed = re::testing::test_seed() + seed_offset;
  StaticInst a, b;
  a.pc = 1;
  a.pattern = StreamPattern{seed_offset << 36, 64, 4 << 20};
  b.pc = 2;
  b.pattern = HotBufferPattern{(seed_offset + 8) << 36, 64, 16 << 10};
  p.loops.push_back(Loop{{a, b}, 32768});
  p.outer_reps = 2;
  return p;
}

ChaosConfig small_config(double rate) {
  ChaosConfig config;
  config.fault_rate = rate;
  config.horizon_refs = 1 << 17;
  config.mean_episode_refs = 8192;
  config.cores = 2;
  config.seed = re::testing::test_seed();
  return config;
}

SupervisorOptions small_supervisor_options() {
  SupervisorOptions opts;
  opts.adaptive.window_refs = 1024;
  opts.adaptive.sampler = core::SamplerConfig{50, 42};
  opts.adaptive.phases.hysteresis_windows = 1;
  opts.adaptive.min_reoptimize_refs = 8192;
  opts.heartbeat_grace_windows = 4;
  opts.backoff_base_windows = 2;
  opts.half_open_probe_windows = 2;
  // Back-to-back episodes can chain trips before a probe completes (the
  // probe stalls into the next episode); give the breaker a budget matched
  // to this schedule's fault density.
  opts.max_trips = 8;
  opts.seed = re::testing::test_seed();
  return opts;
}

TEST(ChaosSchedule, SameSeedReproducesByteIdenticalSchedules) {
  const ChaosConfig config = small_config(0.3);
  const std::string once = ChaosSchedule::generate(config).to_string();
  const std::string twice = ChaosSchedule::generate(config).to_string();
  EXPECT_EQ(once, twice);
  EXPECT_FALSE(ChaosSchedule::generate(config).episodes().empty());
}

TEST(ChaosSchedule, ZeroFaultRateGeneratesNothing) {
  const ChaosSchedule schedule = ChaosSchedule::generate(small_config(0.0));
  EXPECT_TRUE(schedule.episodes().empty());
  EXPECT_EQ(schedule.last_faulted_ref(0), 0u);
}

TEST(ChaosSchedule, EpisodesStayInsideTheActiveSpan) {
  const ChaosConfig config = small_config(0.5);
  const ChaosSchedule schedule = ChaosSchedule::generate(config);
  const std::uint64_t active_limit = static_cast<std::uint64_t>(
      static_cast<double>(config.horizon_refs) * config.active_fraction);
  ASSERT_FALSE(schedule.episodes().empty());
  for (const ChaosEpisode& episode : schedule.episodes()) {
    EXPECT_LT(episode.begin_ref, episode.end_ref);
    EXPECT_LE(episode.end_ref, active_limit);
    EXPECT_GE(episode.core, 0);
    EXPECT_LT(episode.core, config.cores);
    if (episode.kind == ChaosFaultKind::ClockSkew) {
      EXPECT_NE(episode.magnitude, 0);
    }
    if (episode.kind == ChaosFaultKind::ProfileCorruption) {
      EXPECT_GE(episode.magnitude, 20);
      EXPECT_LE(episode.magnitude, 80);
    }
  }
  // Every faulted core gets a clean tail to recover in.
  for (int core = 0; core < config.cores; ++core) {
    EXPECT_LE(schedule.last_faulted_ref(core), active_limit);
  }
}

TEST(ChaosInjector, ReplaysEpisodeSemanticsExactly) {
  ChaosConfig config;
  config.cores = 2;
  const ChaosSchedule schedule = ChaosSchedule::from_episodes(
      config,
      {
          ChaosEpisode{ChaosFaultKind::WindowDrop, 0, 10, 20, 0},
          ChaosEpisode{ChaosFaultKind::ClockSkew, 0, 30, 40, 500},
          ChaosEpisode{ChaosFaultKind::GovernorBlackout, 1, 5, 15, 0},
          ChaosEpisode{ChaosFaultKind::ProfileCorruption, 1, 20, 30, 50},
      });
  ChaosInjector injector(schedule);

  const core::FaultInjector* seen_injector = nullptr;
  for (std::uint64_t ref = 0; ref < 50; ++ref) {
    const RefChaos on_core0 = injector.advance(0, ref);
    EXPECT_EQ(on_core0.drop, ref >= 10 && ref < 20) << "ref " << ref;
    if (ref >= 30 && ref < 40) {
      EXPECT_EQ(on_core0.clock_skew,
                500 * static_cast<std::int64_t>(ref - 30));
    } else {
      EXPECT_EQ(on_core0.clock_skew, 0);
    }
    EXPECT_FALSE(on_core0.governor_blackout);
    EXPECT_EQ(on_core0.profile_injector, nullptr);

    const RefChaos on_core1 = injector.advance(1, ref);
    EXPECT_EQ(on_core1.governor_blackout, ref >= 5 && ref < 15);
    if (ref >= 20 && ref < 30) {
      ASSERT_NE(on_core1.profile_injector, nullptr);
      if (seen_injector == nullptr) seen_injector = on_core1.profile_injector;
      // The injector instance is stable across the episode.
      EXPECT_EQ(on_core1.profile_injector, seen_injector);
    } else {
      EXPECT_EQ(on_core1.profile_injector, nullptr);
    }
  }
}

TEST(ChaosCacheCrash, QuarantinesCorruptionAndSurvivesTornWrites) {
  const CacheCrashReport report = chaos_cache_crash_check(
      re::testing::test_seed(), 64, "chaos_cache_crash_test.json");
  EXPECT_EQ(report.trials, 64u);
  // The crash-consistency contract: body corruption never refuses the load
  // and every entry is accounted for (loaded, quarantined or missing).
  EXPECT_EQ(report.failed_loads, 0u) << report.to_string();
  EXPECT_EQ(report.accounting_errors, 0u) << report.to_string();
  EXPECT_EQ(report.clean_loads + report.degraded_loads, report.trials);
  // A kill mid-write leaves the previous snapshot fully loadable.
  EXPECT_TRUE(report.survives_torn_write);
  // Single-point corruption loses at most a suffix of the file; across the
  // sweep most entries come back.
  EXPECT_GT(report.entries_recovered,
            report.trials * report.entries_per_trial / 2);
}

TEST(ChaosRun, FixedSeedIsByteDeterministic) {
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const Program app0 = mix_program(0);
  const Program app1 = mix_program(1);
  const std::vector<const workloads::Program*> programs{&app0, &app1};
  const ChaosConfig config = small_config(0.3);
  const SupervisorOptions opts = small_supervisor_options();

  const ChaosRunResult once =
      run_chaos_mix(machine, programs, false, config, opts);
  const ChaosRunResult twice =
      run_chaos_mix(machine, programs, false, config, opts);

  EXPECT_EQ(once.schedule.to_string(), twice.schedule.to_string());
  ASSERT_EQ(once.chaotic.apps.size(), twice.chaotic.apps.size());
  for (std::size_t i = 0; i < once.chaotic.apps.size(); ++i) {
    EXPECT_EQ(once.chaotic.apps[i].cycles, twice.chaotic.apps[i].cycles);
  }
  ASSERT_EQ(once.domains.size(), twice.domains.size());
  for (std::size_t i = 0; i < once.domains.size(); ++i) {
    EXPECT_EQ(once.domains[i].to_string(), twice.domains[i].to_string());
  }
}

TEST(ChaosRun, SupervisedRunUnderFaultsNeverLosesToNoPrefetch) {
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const Program app0 = mix_program(0);
  const Program app1 = mix_program(1);
  const std::vector<const workloads::Program*> programs{&app0, &app1};

  const ChaosRunResult result = run_chaos_mix(
      machine, programs, false, small_config(0.4),
      small_supervisor_options());

  ASSERT_GT(result.chaotic.elapsed_cycles, 0u);
  ASSERT_GT(result.baseline.elapsed_cycles, 0u);
  // The paper's never-hurts contract, held under fault injection: the
  // supervised runtime may lose its prefetch benefit to faults, but must
  // not run slower than not prefetching at all (small epsilon for
  // perturbed-warmup noise).
  EXPECT_LE(result.worst_vs_baseline, 1.01) << "chaotic run lost to the "
                                            << "no-prefetch baseline";
  // Faulted domains act: something tripped, rolled back or recovered, and
  // no domain ended permanently broken at this fault rate.
  EXPECT_FALSE(result.any_open);
}

}  // namespace
}  // namespace re::runtime
