// repf — command-line front end for the resource-efficient prefetching
// framework: dump workloads to the trace-program DSL, run the optimization
// pipeline on a DSL file (printing the annotated listing with inserted
// prefetches), simulate programs under any policy, and measure coverage.
//
//   repf list
//   repf dump <benchmark>
//   repf optimize <file|benchmark> [--machine amd|intel] [--no-nt]
//                 [--stride-centric] [--jobs N] [--scheduler B] [--verbose]
//   repf run <file|benchmark> [--machine amd|intel] [--hw] [--optimize]
//                 [--jobs N] [--json FILE]
//   repf coverage <file|benchmark> [--machine amd|intel]
//   repf phases <file|benchmark> [--window N] [--threshold X]
//   repf adapt <file|benchmark> [--machine amd|intel] [--window N]
//                 [--threshold X] [--save-cache FILE] [--load-cache FILE]
//                 [--jobs N] [--verbose]
//   repf faultcheck <file|benchmark> [--machine amd|intel] [--rate PCT]
//                 [--seed N] [--jobs N] [--verbose]
//   repf adapt <file|benchmark> ... [--json FILE]
//   repf verify [--machine amd|intel] [--seed N] [--families a,b,...]
//                 [--golden DIR] [--bless] [--jobs N] [--json FILE]
//                 [--verbose]
//   repf chaos [--machine amd|intel] [--rate PCT] [--seed N] [--cores N]
//                 [--serve] [--crash-check] [--jobs N] [--json FILE]
//                 [--verbose]
//   repf serve [--machine amd|intel] [--cores N] [--steps N] [--seed N]
//                 [--jobs N] [--json FILE] [--verbose]
//
// Every command also understands --help. --jobs N fans independent units
// (benchmarks, fuzzed traces, fault rates, per-PC curve builds, advisory
// solves) out over the engine's deterministic executor; output is
// byte-identical at any N. --scheduler forkjoin|steal picks the dispatch
// backend (shared claim counter vs per-worker deques with work stealing) —
// like --jobs, a perf knob that can never change output bytes.
//
// Exit codes (uniform across commands): 0 success; 1 operational failure
// (bad file, I/O error, verify mismatch); 2 invalid usage; 3
// runtime-degradation gate failure (faultcheck, chaos, or serve invariant
// violated — the output names the seed that reproduces it).
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/functional_sim.hh"
#include "core/fault_injection.hh"
#include "core/phases.hh"
#include "core/pipeline.hh"
#include "engine/executor.hh"
#include "engine/options.hh"
#include "engine/pipeline.hh"
#include "engine/store.hh"
#include "runtime/adaptive_controller.hh"
#include "runtime/chaos.hh"
#include "runtime/plan_cache.hh"
#include "runtime/supervisor.hh"
#include "serve/harness.hh"
#include "serve/service.hh"
#include "sim/system.hh"
#include "support/atomic_file.hh"
#include "support/json.hh"
#include "support/text_table.hh"
#include "verify/differential.hh"
#include "verify/golden.hh"
#include "verify/trace_fuzzer.hh"
#include "workloads/dsl.hh"
#include "workloads/suite.hh"

namespace {

using namespace re;

// Exit-code policy (documented in usage()): distinct codes let CI tell a
// broken invocation from a broken invariant.
constexpr int kExitFailure = 1;   // operational failure (I/O, bad input file)
constexpr int kExitUsage = 2;     // invalid arguments
constexpr int kExitDegraded = 3;  // never-hurts / recovery gate violated

struct Options {
  std::string command;
  std::string target;
  sim::MachineConfig machine = sim::amd_phenom_ii();
  bool hw_prefetch = false;
  bool optimize = false;
  bool enable_nt = true;
  bool stride_centric = false;
  bool verbose = false;
  bool help = false;
  /// Fault rate for `faultcheck` as a fraction; negative = sweep the
  /// default {0, 5, 20, 50} % ladder.
  double fault_rate = -1.0;
  std::uint64_t fault_seed = 0xFA57;
  /// Fuzzer seed for `verify` (also set by --seed; own default).
  std::uint64_t verify_seed = 42;
  /// Schedule seed for `chaos` (also set by --seed; own default).
  std::uint64_t chaos_seed = 0xC4A05;
  /// Cores in the `chaos` synthetic mix ([1, 16], checked in cmd_chaos) or
  /// simulated client cores in `serve` (no upper bound — the service is
  /// virtual-time, 10k+ cores is the intended overload regime).
  int chaos_cores = 0;  // 0 = command default (chaos 2, serve 64)
  /// Also run the plan-cache kill-and-restart sweep in `chaos` (with
  /// --serve: the journal tear/recover sweep instead).
  bool crash_check = false;
  /// `chaos --serve`: target the advisory service tier instead of the
  /// supervised adaptive runtime.
  bool chaos_serve = false;
  /// `chaos --serve --poison-warm-start`: also sweep the poisoned
  /// warm-start recovery gates (bit flips, stale fingerprints, truncation).
  bool poison_warm_start = false;
  /// `serve`: journal acked plans to this directory.
  std::string serve_journal_dir;
  /// `serve --warm-start DIR`: trust-but-verify cache warm-up from a
  /// prior run's shard journals.
  std::string warm_start_dir;
  /// Virtual ticks for `serve` (0 = default 512).
  std::uint64_t serve_steps = 0;
  /// Comma-separated fuzzer family names for `verify` (empty = all).
  std::string families;
  /// Golden-plan snapshot directory for `verify`; empty skips the check.
  std::string golden_dir;
  bool bless = false;
  /// Phase/adaptation window in references (0 = command default).
  std::uint64_t window = 0;
  /// Phase-signature similarity threshold (0 = command default).
  double threshold = 0.0;
  std::string save_cache;
  std::string load_cache;
  /// Engine worker count (--jobs). 1 = serial; any N yields byte-identical
  /// output (the executor's determinism contract).
  int jobs = 1;
  /// Dispatch backend (--scheduler). Like --jobs, a perf knob only: both
  /// backends honor the determinism contract bit-for-bit.
  engine::SchedulerBackend scheduler = engine::SchedulerBackend::kForkJoin;
  /// Also write the command's report as JSON to this path (atomic write);
  /// `run`, `adapt`, `verify`, `chaos`, and `serve` honor it.
  std::string json_path;
};

/// The subcommand registry: one row per command, driving usage(), the
/// machine-readable `repf commands` listing, and the CLI self-test (every
/// registered command must appear in --help and answer `<cmd> --help`
/// with exit 0). Add new commands here, in help_for(), and in main().
struct CommandInfo {
  const char* name;
  /// Preformatted usage block (argument stub + aligned description lines).
  const char* block;
};

constexpr CommandInfo kCommands[] = {
    {"list", "  list                         list built-in workload models\n"},
    {"dump", "  dump <benchmark>             print a workload in the DSL\n"},
    {"optimize",
     "  optimize <file|benchmark>    run the pipeline, print the annotated\n"
     "                               listing\n"},
    {"run", "  run <file|benchmark>         simulate under a chosen policy\n"},
    {"coverage",
     "  coverage <file|benchmark>    Table-I style coverage row\n"},
    {"phases",
     "  phases <file|benchmark>      detect execution phases\n"},
    {"adapt",
     "  adapt <file|benchmark>       run the online adaptive controller,\n"
     "                               compare vs baseline and static plan\n"},
    {"faultcheck",
     "  faultcheck <file|benchmark>  inject profile faults, verify the\n"
     "                               never-hurts degradation invariant\n"},
    {"verify",
     "  verify                       differential oracle (StatStack vs\n"
     "                               exact LRU) and golden-plan snapshots\n"},
    {"corun",
     "  corun                        co-run scenario matrix: composed\n"
     "                               shared-LLC model vs the exact\n"
     "                               interleaved-LRU oracle\n"},
    {"chaos",
     "  chaos                        replay a seeded fault schedule against\n"
     "                               the supervised runtime, check recovery\n"
     "                               (--serve targets the advisory service)\n"},
    {"serve",
     "  serve                        run the advisory plan service under\n"
     "                               simulated client load, check the\n"
     "                               overload/degradation gates\n"},
    {"commands",
     "  commands                     print registered subcommand names, one\n"
     "                               per line (for scripts and self-tests)\n"},
};

int usage() {
  std::fprintf(stderr,
               "usage: repf <command> [args]   (repf <command> --help for "
               "details)\n");
  for (const CommandInfo& command : kCommands) {
    std::fputs(command.block, stderr);
  }
  std::fprintf(
      stderr,
      "exit codes: 0 ok, 1 operational failure, 2 invalid usage,\n"
      "            3 degradation-gate violation (output names the seed)\n");
  return kExitUsage;
}

/// `repf commands`: the registry, machine-readable. The CLI self-test
/// iterates this to prove every command is documented and help-answering.
int cmd_commands() {
  for (const CommandInfo& command : kCommands) {
    std::printf("%s\n", command.name);
  }
  return 0;
}

/// Detailed per-command help. Returns nullptr for unknown commands.
const char* help_for(const std::string& command) {
  if (command == "list") {
    return "repf list\n"
           "  Print every built-in workload model (paper Table I) with its\n"
           "  dynamic reference count and static load count.\n";
  }
  if (command == "dump") {
    return "repf dump <benchmark>\n"
           "  Print a built-in workload in the trace-program DSL, suitable\n"
           "  for editing and feeding back to any other command.\n";
  }
  if (command == "optimize") {
    return "repf optimize <file|benchmark> [options]\n"
           "  Run the full sampling -> StatStack -> MDDLI -> stride ->\n"
           "  bypass pipeline and print the annotated listing with the\n"
           "  inserted prefetches.\n"
           "    --machine amd|intel   target machine model (default amd)\n"
           "    --no-nt               disable non-temporal (bypass) hints\n"
           "    --stride-centric      use the stride-centric baseline pass\n"
           "                          instead of the MDDLI pipeline\n"
           "    --jobs N              engine workers for the pipeline\n"
           "                          (byte-identical output at any N)\n"
           "    --scheduler B         dispatch backend: forkjoin or steal\n"
           "                          (byte-identical output either way)\n"
           "    --verbose             also print the effective analysis\n"
           "                          knobs and the executor config\n"
           "                          (audit trail)\n";
  }
  if (command == "run") {
    return "repf run <file|benchmark> [options]\n"
           "  Simulate one program alone on core 0 and print run metrics.\n"
           "    --machine amd|intel   target machine model (default amd)\n"
           "    --hw                  enable the hardware prefetcher\n"
           "    --optimize            software-prefetch via the pipeline\n"
           "                          before running\n"
           "    --jobs N              engine workers for the optimize step\n"
           "                          (byte-identical output at any N)\n"
           "    --scheduler B         dispatch backend: forkjoin or steal\n"
           "    --json FILE           also write the metrics as JSON\n"
           "                          (atomic temp-file + rename)\n";
  }
  if (command == "coverage") {
    return "repf coverage <file|benchmark> [--machine amd|intel]\n"
           "  Measure miss coverage and overhead (paper Table I columns)\n"
           "  for the MDDLI-filtered and stride-centric passes.\n";
  }
  if (command == "phases") {
    return "repf phases <file|benchmark> [options]\n"
           "  Profile the program, fingerprint fixed-size windows by their\n"
           "  per-PC frequency signatures and cluster them into phases.\n"
           "    --window N      window size in references (default 65536)\n"
           "    --threshold X   signature Manhattan-distance threshold in\n"
           "                    [0, 2] below which windows share a phase\n"
           "                    (default 0.5)\n";
  }
  if (command == "adapt") {
    return "repf adapt <file|benchmark> [options]\n"
           "  Run the online adaptive prefetch runtime (windowed sampling,\n"
           "  phase detection, plan cache, bandwidth governor) against the\n"
           "  no-prefetch baseline and the offline static plan.\n"
           "    --machine amd|intel   target machine model (default amd)\n"
           "    --window N            adaptation window in references\n"
           "                          (default 1024)\n"
           "    --threshold X         phase-match threshold in [0, 2]\n"
           "                          (default 0.5)\n"
           "    --save-cache FILE     write the learned plan cache as JSON\n"
           "    --load-cache FILE     warm-start from a saved plan cache\n"
           "    --jobs N              engine workers for the offline plan\n"
           "                          and per-window re-optimizations\n"
           "    --scheduler B         dispatch backend: forkjoin or steal\n"
           "    --json FILE           also write the comparison as JSON\n"
           "                          (atomic temp-file + rename)\n"
           "    --verbose             also print the cached plan sets\n";
  }
  if (command == "faultcheck") {
    return "repf faultcheck <file|benchmark> [options]\n"
           "  Inject sampling faults into the profile and verify the\n"
           "  never-hurts degradation invariant end-to-end.\n"
           "    --machine amd|intel   target machine model (default amd)\n"
           "    --rate PCT            single fault rate in percent\n"
           "                          (default: sweep 0/5/20/50)\n"
           "    --seed N              fault-injection seed\n"
           "    --jobs N              evaluate fault rates on N engine\n"
           "                          workers (byte-identical output)\n"
           "    --scheduler B         dispatch backend: forkjoin or steal\n"
           "    --verbose             print the degradation logs\n";
  }
  if (command == "chaos") {
    return "repf chaos [options]\n"
           "  Generate a seeded schedule of fault episodes (window drops,\n"
           "  clock skew, governor blackout, profile corruption), replay it\n"
           "  against the supervised adaptive runtime on a synthetic\n"
           "  multi-core mix, and check the recovery gates: the chaotic run\n"
           "  never loses more than 1 % to the no-prefetch baseline, every\n"
           "  recovery completes within 64 windows, no circuit opens, and a\n"
           "  zero-fault schedule trips nothing. Output is deterministic:\n"
           "  same seed, same bytes. Exits 3 if any gate fails.\n"
           "    --machine amd|intel   target machine model (default amd)\n"
           "    --rate PCT            single fault rate in percent\n"
           "                          (default: sweep 0/10/25/50)\n"
           "    --seed N              schedule seed (default 0xC4A05)\n"
           "    --cores N             cores in the synthetic mix\n"
           "                          (default 2, max 16)\n"
           "    --serve               target the advisory service tier: a\n"
           "                          fault-rate sweep of injected cache\n"
           "                          faults with double-run determinism,\n"
           "                          breaker, and degradation gates\n"
           "    --crash-check         also sweep crash consistency: plan\n"
           "                          cache kill/corruption, or with --serve\n"
           "                          the journal tear/recover/ack audit\n"
           "    --poison-warm-start   with --serve: also sweep poisoned\n"
           "                          warm-start recovery — bit-flipped,\n"
           "                          stale-fingerprint, and truncated shard\n"
           "                          journals must cost cache warmth only\n"
           "                          (quarantine/reject), never a stale or\n"
           "                          alien plan, a lost ack, or the daemon\n"
           "    --jobs N              replay fault rates on N engine\n"
           "                          workers (byte-identical output)\n"
           "    --scheduler B         dispatch backend: forkjoin or steal\n"
           "    --json FILE           also write the gate results as JSON\n"
           "                          (atomic temp-file + rename)\n"
           "    --verbose             print the fault schedule and per-core\n"
           "                          domain stats\n";
  }
  if (command == "serve") {
    return "repf serve [options]\n"
           "  Run the long-lived advisory plan service against seeded mixed\n"
           "  hot/cold traffic from N simulated client cores in virtual\n"
           "  time: cache hits answer immediately, misses solve on the\n"
           "  analysis engine under a deadline budget with cooperative\n"
           "  cancellation, and overload degrades (last-known-good or\n"
           "  no-prefetch) instead of blocking. Checks the robustness\n"
           "  gates: bounded queue, no deadline-missed answer served as\n"
           "  fresh, every degraded answer safe. Output is deterministic:\n"
           "  same seed, same bytes, at any --jobs. Exits 3 on any gate\n"
           "  failure.\n"
           "    --machine amd|intel   target machine model (default amd)\n"
           "    --cores N             simulated client cores (default 64;\n"
           "                          no upper bound — virtual time)\n"
           "    --steps N             virtual ticks to run (default 512)\n"
           "    --seed N              traffic/service seed (default 0xC4A05)\n"
           "    --journal DIR         journal acked plans to per-shard\n"
           "                          append-mode files under DIR (created\n"
           "                          if missing), headers stamped with the\n"
           "                          machine-model/knob fingerprint\n"
           "    --warm-start DIR      trust-but-verify warm start from a\n"
           "                          prior run's shard journals in DIR:\n"
           "                          fingerprint + CRC + plan-sanity\n"
           "                          revalidation, suspect state is\n"
           "                          quarantined (that phase re-solves\n"
           "                          fresh), never served\n"
           "    --jobs N              engine workers for the solve batches\n"
           "                          (byte-identical output at any N)\n"
           "    --scheduler B         dispatch backend: forkjoin or steal\n"
           "    --json FILE           also write the metrics as JSON\n"
           "                          (atomic temp-file + rename)\n"
           "    --verbose             also print the per-shard breaker\n"
           "                          states and cache sizes\n";
  }
  if (command == "verify") {
    return "repf verify [options]\n"
           "  Run the differential verification harness: fuzzed traces with\n"
           "  known analytic truth are replayed once into both the sampled\n"
           "  StatStack estimator and an exact-LRU reference model, and the\n"
           "  miss-ratio curves plus MDDLI/bypass decisions are compared.\n"
           "  Output is deterministic: same seed, same bytes.\n"
           "    --machine amd|intel   target machine model (default amd)\n"
           "    --seed N              fuzzer seed (default 42)\n"
           "    --families a,b,...    restrict to these fuzzer families\n"
           "                          (strided subline chase blocked\n"
           "                          phasemix hotcold; default all)\n"
           "    --golden DIR          also check the suite's prefetch plans\n"
           "                          against DIR/plans_<machine>.golden\n"
           "    --bless               rewrite the golden snapshot instead\n"
           "                          of checking it\n"
           "    --jobs N              fan traces and golden benchmarks out\n"
           "                          over N engine workers\n"
           "                          (byte-identical output at any N)\n"
           "    --scheduler B         dispatch backend: forkjoin or steal\n"
           "    --json FILE           also write the results as JSON\n"
           "                          (atomic temp-file + rename)\n"
           "    --verbose             print the full per-trace reports\n";
  }
  if (command == "commands") {
    return "repf commands\n"
           "  Print every registered subcommand name, one per line. The CLI\n"
           "  self-test iterates this list to prove each command appears in\n"
           "  --help and answers `repf <cmd> --help` with exit 0.\n";
  }
  if (command == "corun") {
    return "repf corun [options]\n"
           "  Run the multi-programmed co-run scenario matrix: per-core\n"
           "  StatStack profiles are composed into shared-LLC miss-ratio\n"
           "  curves (interleaving-ratio reuse inflation) and checked\n"
           "  against one exact LRU stack over the interleaved trace, with\n"
           "  per-family error bounds, an exact per-core miss-attribution\n"
           "  identity, and the streaming-vs-chase interference prediction\n"
           "  (hardware prefetching must be predicted to degrade the chase\n"
           "  victim). Output is deterministic: same seed, same bytes.\n"
           "    --machine amd|intel   target machine model (default amd)\n"
           "    --seed N              fuzzer seed (default 42)\n"
           "    --cores N             run only this core count\n"
           "                          (default matrix: 2, 4, 8; max 16)\n"
           "    --golden DIR          also check the co-run victim plans\n"
           "                          against DIR/corun_plans_<machine>\n"
           "                          .golden\n"
           "    --bless               rewrite the golden snapshot instead\n"
           "                          of checking it\n"
           "    --jobs N              fan scenario cells and golden\n"
           "                          benchmarks out over N engine workers\n"
           "                          (byte-identical output at any N)\n"
           "    --scheduler B         dispatch backend: forkjoin or steal\n"
           "    --json FILE           also write the results as JSON\n"
           "                          (atomic temp-file + rename)\n"
           "    --verbose             print the full per-scenario reports\n";
  }
  return nullptr;
}

/// The one place an Executor is built from CLI options: every command
/// honors --jobs and --scheduler identically.
engine::Executor make_executor(const Options& opts) {
  return engine::Executor(opts.jobs, engine::kDefaultExecutorSeed,
                          opts.scheduler);
}

/// Round-trippable rendering for JSON number output.
std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return std::string(buf);
}

/// Atomic-write a command's JSON report; prints the error and returns
/// kExitFailure on I/O trouble, 0 otherwise.
int write_json_report(const std::string& path, const std::string& payload) {
  const Status saved = support::write_file_atomic(path, payload);
  if (!saved.ok()) {
    std::fprintf(stderr, "repf: %s: %s\n", path.c_str(),
                 saved.to_string().c_str());
    return kExitFailure;
  }
  return 0;
}

workloads::Program load_target(const std::string& target) {
  const auto& names = workloads::suite_names();
  if (std::find(names.begin(), names.end(), target) != names.end()) {
    return workloads::make_benchmark(target);
  }
  std::ifstream file(target);
  if (!file) {
    throw std::runtime_error("no such benchmark or file: " + target);
  }
  std::ostringstream text;
  text << file.rdbuf();
  return workloads::parse_program(text.str());
}

int cmd_list() {
  std::printf("built-in workload models (paper Table I):\n");
  TextTable table({"benchmark", "refs/run", "static loads"});
  for (const std::string& name : workloads::suite_names()) {
    const auto p = workloads::make_benchmark(name);
    table.add_row({name, std::to_string(p.total_references()),
                   std::to_string(p.static_instruction_count())});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_dump(const Options& opts) {
  std::fputs(workloads::print_program(load_target(opts.target)).c_str(),
             stdout);
  return 0;
}

int cmd_optimize(const Options& opts) {
  const workloads::Program program = load_target(opts.target);
  engine::AnalysisKnobs knobs;
  knobs.enable_non_temporal = opts.enable_nt;
  const core::OptimizerOptions options = engine::make_optimizer_options(knobs);
  const engine::Executor executor = make_executor(opts);
  engine::ArtifactStore store;
  const engine::EngineContext ctx{&executor, &store};
  const core::OptimizationReport report =
      opts.stride_centric
          ? engine::run_stride_centric(program, opts.machine, options, ctx)
          : engine::run_optimize(program, opts.machine, options, ctx);

  if (opts.verbose) {
    std::printf("# effective analysis knobs:\n");
    std::istringstream lines(engine::describe_knobs(knobs));
    std::string line;
    while (std::getline(lines, line)) {
      std::printf("#   %s\n", line.c_str());
    }
    // Execution config: the analysis result never depends on it, the
    // wall-clock (and the audit trail) does.
    std::printf("# executor: %s\n",
                engine::describe_executor(executor).c_str());
  }
  std::printf("# %s pass on %s | Δ=%.2f cycles/memop | %zu plans\n",
              opts.stride_centric ? "stride-centric" : "MDDLI",
              opts.machine.name.c_str(), report.cycles_per_memop,
              report.plans.size());
  for (const auto& plan : report.plans) {
    std::printf("#   pc%-3u %s %+lld\n", plan.pc, core::hint_mnemonic(plan.hint),
                static_cast<long long>(plan.distance_bytes));
  }
  std::fputs(workloads::print_program(report.optimized).c_str(), stdout);
  return 0;
}

int cmd_run(const Options& opts) {
  workloads::Program program = load_target(opts.target);
  if (opts.optimize) {
    engine::AnalysisKnobs knobs;
    knobs.enable_non_temporal = opts.enable_nt;
    const engine::Executor executor = make_executor(opts);
    engine::ArtifactStore store;
    program = engine::run_optimize(program, opts.machine,
                                   engine::make_optimizer_options(knobs),
                                   engine::EngineContext{&executor, &store})
                  .optimized;
  }
  const sim::RunResult run =
      sim::run_single(opts.machine, program, opts.hw_prefetch);
  const auto& mem = run.apps[0].mem;
  const double cpi = static_cast<double>(run.apps[0].cycles) /
                     static_cast<double>(mem.loads);

  TextTable table({"metric", "value"});
  table.add_row({"machine", opts.machine.name});
  table.add_row({"cycles", std::to_string(run.apps[0].cycles)});
  table.add_row({"references", std::to_string(mem.loads)});
  table.add_row({"CPI (per memop)", format_double(cpi, 2)});
  table.add_row({"L1 miss ratio", format_percent(mem.l1_miss_ratio())});
  table.add_row({"off-chip lines", std::to_string(run.dram.total_lines())});
  table.add_row({"bandwidth", format_gbps(run.bandwidth_gbps())});
  table.add_row({"sw prefetches", std::to_string(mem.sw_prefetches_issued)});
  table.add_row({"late prefetches", std::to_string(mem.late_prefetch_hits)});
  table.add_row(
      {"hw prefetch lines", std::to_string(mem.hw_prefetch_dram_lines)});
  std::fputs(table.render().c_str(), stdout);

  if (!opts.json_path.empty()) {
    const auto& num = json_num;
    std::ostringstream json;
    json << "{\n"
         << "  \"command\": \"run\",\n"
         << "  \"benchmark\": \"" << json::escape(program.name) << "\",\n"
         << "  \"machine\": \"" << json::escape(opts.machine.name) << "\",\n"
         << "  \"hw_prefetch\": " << (opts.hw_prefetch ? "true" : "false")
         << ",\n"
         << "  \"optimized\": " << (opts.optimize ? "true" : "false") << ",\n"
         << "  \"cycles\": " << run.apps[0].cycles << ",\n"
         << "  \"references\": " << mem.loads << ",\n"
         << "  \"cpi_per_memop\": " << num(cpi) << ",\n"
         << "  \"l1_miss_ratio\": " << num(mem.l1_miss_ratio()) << ",\n"
         << "  \"offchip_lines\": " << run.dram.total_lines() << ",\n"
         << "  \"bandwidth_gbps\": " << num(run.bandwidth_gbps()) << ",\n"
         << "  \"sw_prefetches\": " << mem.sw_prefetches_issued << ",\n"
         << "  \"late_prefetches\": " << mem.late_prefetch_hits << ",\n"
         << "  \"hw_prefetch_lines\": " << mem.hw_prefetch_dram_lines << "\n"
         << "}\n";
    const int rc = write_json_report(opts.json_path, json.str());
    if (rc != 0) return rc;
  }
  return 0;
}

int cmd_phases(const Options& opts) {
  const workloads::Program program = load_target(opts.target);
  core::PhaseOptions phase_options;
  if (opts.window > 0) phase_options.window_refs = opts.window;
  if (opts.threshold > 0.0) phase_options.similarity_threshold = opts.threshold;
  const core::PhasedProfile phased =
      core::profile_with_phases(program, {}, phase_options);
  std::printf("%d phase(s) over %llu references\n", phased.num_phases,
              static_cast<unsigned long long>(
                  phased.full.total_references));
  TextTable table({"segment", "phase", "begin", "end", "refs"});
  for (std::size_t i = 0; i < phased.segments.size(); ++i) {
    const auto& seg = phased.segments[i];
    table.add_row({std::to_string(i), std::to_string(seg.phase_id),
                   std::to_string(seg.begin_ref),
                   std::to_string(seg.end_ref),
                   std::to_string(seg.end_ref - seg.begin_ref)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_coverage(const Options& opts) {
  const workloads::Program program = load_target(opts.target);
  const auto mddli = core::optimize_program(program, opts.machine);
  const auto centric = core::stride_centric_optimize(program, opts.machine);
  const auto cov_m = analysis::measure_coverage(program, mddli.optimized,
                                                opts.machine.l1);
  const auto cov_c = analysis::measure_coverage(program, centric.optimized,
                                                opts.machine.l1);
  TextTable table({"method", "miss coverage", "OH", "prefetches"});
  table.add_row({"MDDLI filtered", format_percent(cov_m.miss_coverage()),
                 format_double(cov_m.overhead(), 1),
                 std::to_string(cov_m.prefetches_executed)});
  table.add_row({"stride-centric", format_percent(cov_c.miss_coverage()),
                 format_double(cov_c.overhead(), 1),
                 std::to_string(cov_c.prefetches_executed)});
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_adapt(const Options& opts) {
  const workloads::Program program = load_target(opts.target);

  // One executor for the whole command: the offline static plan and every
  // per-window re-optimization inside the controller fan out over it.
  // Declared before the controller so the pointer outlives every use.
  const engine::Executor executor = make_executor(opts);

  runtime::AdaptiveOptions aopts;
  aopts.executor = &executor;
  aopts.window_refs = 1024;
  aopts.sampler = core::SamplerConfig{50, 42};
  aopts.phases.hysteresis_windows = 1;
  if (opts.window > 0) aopts.window_refs = opts.window;
  if (opts.threshold > 0.0) {
    aopts.phases.similarity_threshold = opts.threshold;
    aopts.cache.match_threshold = opts.threshold;
  }

  runtime::AdaptiveController controller(program, opts.machine, aopts);
  if (!opts.load_cache.empty()) {
    // Crash-consistent load: understands both the CRC journal written by
    // --save-cache and legacy JSON; corrupt entries are quarantined, not
    // fatal (warm-starting from a partial cache beats cold-starting).
    auto loaded = runtime::PlanCache::load_file(opts.load_cache, aopts.cache);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "repf: %s: %s\n", opts.load_cache.c_str(),
                   loaded.status().to_string().c_str());
      return kExitFailure;
    }
    runtime::PlanCache::LoadReport report = std::move(loaded.value());
    controller.plan_cache() = std::move(report.cache);
    std::printf("# warm start: %zu cached plan set(s) from %s\n",
                controller.plan_cache().size(), opts.load_cache.c_str());
    if (report.degraded()) {
      std::printf("# degraded load: %zu loaded, %zu quarantined, %zu missing\n",
                  report.loaded, report.quarantined, report.missing);
      for (const std::string& line : report.quarantine_log) {
        std::printf("#   quarantined: %s\n", line.c_str());
      }
    }
  }

  const sim::RunResult base = sim::run_single(opts.machine, program, false);
  engine::ArtifactStore store;
  const core::OptimizationReport merged =
      engine::run_optimize(program, opts.machine, core::OptimizerOptions{},
                           engine::EngineContext{&executor, &store});
  const sim::RunResult stat =
      sim::run_single(opts.machine, merged.optimized, false);
  const sim::RunResult adaptive =
      sim::run_single_adaptive(opts.machine, program, false, controller);
  const runtime::AdaptiveStats stats = controller.stats();

  const double base_cycles = static_cast<double>(base.apps[0].cycles);
  TextTable runs({"configuration", "cycles", "speedup vs baseline"});
  const auto row = [&](const char* name, const sim::RunResult& r) {
    runs.add_row({name, std::to_string(r.apps[0].cycles),
                  format_double(base_cycles /
                                    static_cast<double>(r.apps[0].cycles),
                                3)});
  };
  row("baseline (no prefetch)", base);
  row("static plan (offline)", stat);
  row("online adaptive", adaptive);
  std::fputs(runs.render().c_str(), stdout);

  TextTable table({"adaptive runtime metric", "value"});
  table.add_row({"windows", std::to_string(stats.windows)});
  table.add_row({"phases detected", std::to_string(stats.phases)});
  table.add_row({"phase switches", std::to_string(stats.phase_switches)});
  table.add_row({"re-optimizations", std::to_string(stats.reoptimizations)});
  table.add_row({"  of which refinements", std::to_string(stats.refinements)});
  table.add_row({"plan hot-swaps", std::to_string(stats.hot_swaps)});
  table.add_row({"plan-cache hit rate",
                 format_percent(stats.cache.hit_rate())});
  table.add_row({"measured Δ (cycles/memop)",
                 format_double(stats.measured_cycles_per_memop, 2)});
  table.add_row({"governor demote windows",
                 std::to_string(stats.governor.demote_windows)});
  table.add_row({"governor suppress windows",
                 std::to_string(stats.governor.suppress_windows)});
  table.add_row({"governor peak utilization",
                 format_percent(stats.governor.peak_utilization)});
  std::fputs(table.render().c_str(), stdout);

  if (opts.verbose) {
    std::printf("plan cache (MRU first):\n");
    std::size_t i = 0;
    for (const auto& entry : controller.plan_cache().entries()) {
      std::printf("  entry %zu: %zu plan(s)\n", i++, entry.plans.size());
      for (const auto& plan : entry.plans) {
        std::printf("    pc%-3u %s %+lld\n", plan.pc,
                    core::hint_mnemonic(plan.hint),
                    static_cast<long long>(plan.distance_bytes));
      }
    }
  }

  if (!opts.save_cache.empty()) {
    // Atomic, checksummed journal (temp file + rename): a kill mid-save
    // leaves any previous snapshot intact.
    const Status saved = controller.plan_cache().save(opts.save_cache);
    if (!saved.ok()) {
      std::fprintf(stderr, "repf: %s: %s\n", opts.save_cache.c_str(),
                   saved.to_string().c_str());
      return kExitFailure;
    }
    std::printf("# saved %zu cached plan set(s) to %s\n",
                controller.plan_cache().size(), opts.save_cache.c_str());
  }

  if (!opts.json_path.empty()) {
    const auto& num = json_num;
    const auto speedup = [&](const sim::RunResult& r) {
      return base_cycles / static_cast<double>(r.apps[0].cycles);
    };
    std::ostringstream json;
    json << "{\n"
         << "  \"command\": \"adapt\",\n"
         << "  \"benchmark\": \"" << json::escape(program.name) << "\",\n"
         << "  \"machine\": \"" << json::escape(opts.machine.name) << "\",\n"
         << "  \"window_refs\": " << aopts.window_refs << ",\n"
         << "  \"baseline_cycles\": " << base.apps[0].cycles << ",\n"
         << "  \"static_cycles\": " << stat.apps[0].cycles << ",\n"
         << "  \"adaptive_cycles\": " << adaptive.apps[0].cycles << ",\n"
         << "  \"static_speedup\": " << num(speedup(stat)) << ",\n"
         << "  \"adaptive_speedup\": " << num(speedup(adaptive)) << ",\n"
         << "  \"windows\": " << stats.windows << ",\n"
         << "  \"phases\": " << stats.phases << ",\n"
         << "  \"phase_switches\": " << stats.phase_switches << ",\n"
         << "  \"reoptimizations\": " << stats.reoptimizations << ",\n"
         << "  \"refinements\": " << stats.refinements << ",\n"
         << "  \"hot_swaps\": " << stats.hot_swaps << ",\n"
         << "  \"cache_hit_rate\": " << num(stats.cache.hit_rate()) << ",\n"
         << "  \"measured_cycles_per_memop\": "
         << num(stats.measured_cycles_per_memop) << ",\n"
         << "  \"governor_demote_windows\": " << stats.governor.demote_windows
         << ",\n"
         << "  \"governor_suppress_windows\": "
         << stats.governor.suppress_windows << ",\n"
         << "  \"governor_peak_utilization\": "
         << num(stats.governor.peak_utilization) << "\n"
         << "}\n";
    const int rc = write_json_report(opts.json_path, json.str());
    if (rc != 0) return rc;
  }
  return 0;
}

int cmd_faultcheck(const Options& opts) {
  const workloads::Program program = load_target(opts.target);
  const sim::RunResult base =
      sim::run_single(opts.machine, program, /*hw_prefetch=*/false);
  const double base_cycles = static_cast<double>(base.apps[0].cycles);
  constexpr double kEpsilon = 0.01;

  const core::Profile profile =
      core::profile_program(program, core::SamplerConfig{});
  const core::OptimizationReport clean =
      core::optimize_program(program, opts.machine);

  std::vector<double> rates = {0.0, 0.05, 0.2, 0.5};
  if (opts.fault_rate >= 0.0) rates = {opts.fault_rate};

  std::printf("# faultcheck %s on %s | baseline %llu cycles | ε = %.0f %%\n",
              program.name.c_str(), opts.machine.name.c_str(),
              static_cast<unsigned long long>(base.apps[0].cycles),
              kEpsilon * 100.0);
  TextTable table({"fault rate", "plans", "suppressed", "vs baseline",
                   "verdict"});
  // Each fault rate is an independent optimize+simulate unit; fan them out
  // and assemble rows in rate order (the ordered map keeps output identical
  // to the serial sweep at any --jobs).
  struct RateResult {
    std::size_t plans = 0;
    std::size_t suppressed = 0;
    double delta = 0.0;
    bool ok = true;
    std::string log;
  };
  const engine::Executor executor = make_executor(opts);
  const std::vector<RateResult> results =
      executor.map(rates.size(), [&](std::size_t i) {
        const double rate = rates[i];
        const core::FaultInjector injector(
            core::FaultConfig::uniform(rate, opts.fault_seed));
        const core::OptimizationReport report = core::optimize_with_profile(
            program, injector.inject(profile), opts.machine);
        const sim::RunResult opt =
            sim::run_single(opts.machine, report.optimized, false);

        RateResult r;
        r.plans = report.plans.size();
        r.suppressed = report.degradation.size();
        r.delta =
            static_cast<double>(opt.apps[0].cycles) / base_cycles - 1.0;
        r.ok = r.delta <= kEpsilon;
        for (const core::DelinquentLoad& load : report.delinquent_loads) {
          const bool planned = std::any_of(
              report.plans.begin(), report.plans.end(),
              [&](const core::PrefetchPlan& p) { return p.pc == load.pc; });
          if (!planned && !report.degradation.contains(load.pc)) r.ok = false;
        }
        if (rate == 0.0 && report.plans.size() != clean.plans.size()) {
          r.ok = false;
        }
        if (opts.verbose && !report.degradation.empty()) {
          r.log = "-- degradation log @ " + format_percent(rate) + "\n" +
                  report.degradation.to_string();
        }
        return r;
      });

  int violations = 0;
  std::string logs;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const RateResult& r = results[i];
    if (!r.ok) ++violations;
    table.add_row({format_percent(rates[i]), std::to_string(r.plans),
                   std::to_string(r.suppressed), format_percent(r.delta),
                   r.ok ? "OK" : "VIOLATION"});
    logs += r.log;
  }
  std::fputs(table.render().c_str(), stdout);
  if (opts.verbose) std::fputs(logs.c_str(), stdout);
  if (violations > 0) {
    std::printf("FAILED: %d violation(s) (reproduce with --seed %llu)\n",
                violations,
                static_cast<unsigned long long>(opts.fault_seed));
    return kExitDegraded;
  }
  std::printf("degradation invariant holds\n");
  return 0;
}

/// Per-core stream + hot-buffer mix in disjoint address spaces — the same
/// shape the chaos tests and bench_chaos_recovery use, so a CI failure
/// reproduces here with one flag.
workloads::Program chaos_mix_program(std::uint64_t core) {
  workloads::Program p;
  p.name = "chaos-app-" + std::to_string(core);
  p.seed = 42 + core;
  workloads::StaticInst a, b;
  a.pc = 1;
  a.pattern = workloads::StreamPattern{core << 36, 64, 4 << 20};
  b.pc = 2;
  b.pattern = workloads::HotBufferPattern{(core + 8) << 36, 64, 16 << 10};
  p.loops.push_back(workloads::Loop{{a, b}, 32768});
  p.outer_reps = 2;
  return p;
}

/// Render the serve-gate verdict lines shared by `serve` and
/// `chaos --serve`; returns the number of violated gates.
int print_serve_gates(const serve::ServeRunResult& r,
                      std::uint64_t deadline_ticks) {
  struct Gate {
    const char* name;
    bool ok;
  };
  const bool p99_ok =
      r.p99_admitted <= static_cast<double>(deadline_ticks);
  const Gate gates[] = {
      {"bounded queue (depth <= capacity)", r.queue_bounded},
      {"no stale-as-fresh (missed deadline => degraded)",
       r.no_stale_fresh && r.stats.stale_fresh_violations == 0},
      {"degraded answers safe (LKG or no-prefetch only)", r.degraded_safe},
      {"p99 admitted latency within deadline", p99_ok},
  };
  int violations = 0;
  for (const Gate& gate : gates) {
    if (!gate.ok) ++violations;
    std::printf("gate: %-48s %s\n", gate.name,
                gate.ok ? "OK" : "VIOLATION");
  }
  return violations;
}

std::string serve_stats_json(const serve::ServeRunResult& r) {
  const auto& num = json_num;
  const auto& s = r.stats;
  std::ostringstream json;
  json << "    \"submitted\": " << s.submitted << ",\n"
       << "    \"responses\": " << r.responses << ",\n"
       << "    \"fresh\": " << s.fresh << ",\n"
       << "    \"cache_hits\": " << s.cache_hits << ",\n"
       << "    \"last_known_good\": " << s.last_known_good << ",\n"
       << "    \"no_prefetch\": " << s.no_prefetch << ",\n"
       << "    \"shed_queue_full\": " << s.shed_queue_full << ",\n"
       << "    \"shed_infeasible\": " << s.shed_infeasible << ",\n"
       << "    \"deadline_expired\": " << s.deadline_expired << ",\n"
       << "    \"shard_down\": " << s.shard_down << ",\n"
       << "    \"cache_faults\": " << s.cache_faults << ",\n"
       << "    \"cancelled_solves\": " << s.cancelled_solves << ",\n"
       << "    \"retries\": " << s.retries << ",\n"
       << "    \"journal_appends\": " << s.journal_appends << ",\n"
       << "    \"breaker_trips\": " << s.breaker_trips << ",\n"
       << "    \"deadline_missed\": " << s.deadline_missed << ",\n"
       << "    \"stale_fresh_violations\": " << s.stale_fresh_violations
       << ",\n"
       << "    \"max_queue_depth\": " << s.max_queue_depth << ",\n"
       << "    \"solves_started\": " << s.solves_started << ",\n"
       << "    \"shed_quota\": " << s.shed_quota << ",\n"
       << "    \"quota_breaker_trips\": " << s.quota_breaker_trips << ",\n"
       << "    \"shed_slow_consumer\": " << s.shed_slow_consumer << ",\n"
       << "    \"max_tenant_queue_depth\": " << s.max_tenant_queue_depth
       << ",\n"
       << "    \"warm_files_loaded\": " << s.warm_files_loaded << ",\n"
       << "    \"warm_files_rejected\": " << s.warm_files_rejected << ",\n"
       << "    \"warm_entries_loaded\": " << s.warm_entries_loaded << ",\n"
       << "    \"warm_entries_quarantined\": " << s.warm_entries_quarantined
       << ",\n"
       << "    \"p50_admitted_ticks\": " << num(r.p50_admitted) << ",\n"
       << "    \"p99_admitted_ticks\": " << num(r.p99_admitted) << ",\n"
       << "    \"shed_rate\": " << num(r.shed_rate) << ",\n"
       << "    \"deadline_miss_rate\": " << num(r.deadline_miss_rate) << ",\n"
       << "    \"hit_rate\": " << num(r.hit_rate) << ",\n"
       << "    \"degraded_rate\": " << num(r.degraded_rate) << ",\n"
       << "    \"digest\": " << r.digest;
  return json.str();
}

int cmd_serve(const Options& opts) {
  serve::TrafficConfig traffic;
  traffic.cores = opts.chaos_cores > 0 ? opts.chaos_cores : 64;
  traffic.ticks = opts.serve_steps > 0 ? opts.serve_steps : 512;
  traffic.seed = opts.chaos_seed;

  serve::ServiceOptions sopts;
  sopts.seed = opts.chaos_seed ^ 0xAD115EEDull;
  // Journals and warm-start files carry the machine-model/knob fingerprint
  // so a restart under different assumptions refuses the stale state.
  core::OptimizerOptions knobs;
  knobs.enable_non_temporal = opts.enable_nt;
  sopts.config_fingerprint = serve::config_fingerprint(opts.machine, knobs);
  if (!opts.serve_journal_dir.empty()) {
    ::mkdir(opts.serve_journal_dir.c_str(), 0755);  // EEXIST is fine
    sopts.journal_dir = opts.serve_journal_dir;
  }
  sopts.warm_start_dir = opts.warm_start_dir;

  const engine::Executor executor = make_executor(opts);
  const std::vector<serve::Family> families =
      serve::make_families(traffic.hot_families, traffic.cold_families);
  const serve::AdvisoryService::Solver solver =
      serve::make_engine_solver(families, opts.machine, &executor);

  std::printf("# repf serve | machine=%s | seed=%llu | %d core(s) | "
              "%llu tick(s) | deadline=%llu | fingerprint=%s\n",
              opts.machine.name.c_str(),
              static_cast<unsigned long long>(opts.chaos_seed), traffic.cores,
              static_cast<unsigned long long>(traffic.ticks),
              static_cast<unsigned long long>(sopts.deadline_ticks),
              sopts.config_fingerprint.c_str());
  const serve::ServeRunResult r =
      serve::run_serve_sim(traffic, sopts, solver, &executor);
  const auto& s = r.stats;

  if (!opts.warm_start_dir.empty()) {
    std::printf("# warm start from %s: %llu file(s) accepted, %llu "
                "rejected; %llu entrie(s) verified, %llu quarantined\n",
                opts.warm_start_dir.c_str(),
                static_cast<unsigned long long>(s.warm_files_loaded),
                static_cast<unsigned long long>(s.warm_files_rejected),
                static_cast<unsigned long long>(s.warm_entries_loaded),
                static_cast<unsigned long long>(s.warm_entries_quarantined));
  }

  TextTable table({"service metric", "value"});
  table.add_row({"requests", std::to_string(s.submitted)});
  table.add_row({"  fresh solves", std::to_string(s.fresh)});
  table.add_row({"  cache hits", std::to_string(s.cache_hits)});
  table.add_row({"  last-known-good", std::to_string(s.last_known_good)});
  table.add_row({"  no-prefetch", std::to_string(s.no_prefetch)});
  table.add_row({"shed (queue full)", std::to_string(s.shed_queue_full)});
  table.add_row({"shed (infeasible)", std::to_string(s.shed_infeasible)});
  table.add_row({"deadline expirations", std::to_string(s.deadline_expired)});
  table.add_row({"cancelled solves", std::to_string(s.cancelled_solves)});
  table.add_row({"retries", std::to_string(s.retries)});
  table.add_row({"breaker trips", std::to_string(s.breaker_trips)});
  table.add_row({"p50 admitted (ticks)", format_double(r.p50_admitted, 1)});
  table.add_row({"p99 admitted (ticks)", format_double(r.p99_admitted, 1)});
  table.add_row({"hit rate", format_percent(r.hit_rate)});
  table.add_row({"shed rate", format_percent(r.shed_rate)});
  table.add_row({"deadline-miss rate", format_percent(r.deadline_miss_rate)});
  table.add_row({"degraded rate", format_percent(r.degraded_rate)});
  table.add_row({"max queue depth",
                 std::to_string(s.max_queue_depth) + " / " +
                     std::to_string(sopts.queue_capacity)});
  char digest[32];
  std::snprintf(digest, sizeof digest, "%016llx",
                static_cast<unsigned long long>(r.digest));
  table.add_row({"response digest", digest});
  std::fputs(table.render().c_str(), stdout);

  if (opts.verbose) {
    std::printf("shards: %d | open at end: %d | journal acks: %zu | "
                "final tick: %llu\n",
                sopts.shards, r.shards_open, r.acked.size(),
                static_cast<unsigned long long>(r.final_tick));
  }

  const int violations = print_serve_gates(r, sopts.deadline_ticks);

  if (!opts.json_path.empty()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"command\": \"serve\",\n"
         << "  \"machine\": \"" << json::escape(opts.machine.name) << "\",\n"
         << "  \"seed\": " << opts.chaos_seed << ",\n"
         << "  \"cores\": " << traffic.cores << ",\n"
         << "  \"ticks\": " << traffic.ticks << ",\n"
         << "  \"metrics\": {\n"
         << serve_stats_json(r) << "\n  },\n"
         << "  \"ok\": " << (violations == 0 ? "true" : "false") << "\n"
         << "}\n";
    const int rc = write_json_report(opts.json_path, json.str());
    if (rc != 0) return rc;
  }

  if (violations > 0) {
    std::printf("serve FAILED: %d gate violation(s) (reproduce with "
                "--seed %llu)\n",
                violations,
                static_cast<unsigned long long>(opts.chaos_seed));
    return kExitDegraded;
  }
  std::printf("serve robustness gates hold\n");
  return 0;
}

/// `repf chaos --serve`: fault-rate sweep against the advisory service —
/// injected transient cache faults exercise the retry ladder and the
/// per-shard breakers, every rate is replayed twice to witness
/// byte-determinism, and --crash-check tears the journals.
int cmd_chaos_serve(const Options& opts) {
  std::vector<double> rates = {0.0, 0.1, 0.25, 0.5};
  if (opts.fault_rate >= 0.0) rates = {opts.fault_rate};

  serve::TrafficConfig traffic;
  traffic.cores = 32;
  traffic.ticks = 256;
  traffic.request_rate = 0.1;
  traffic.hot_families = 4;
  traffic.cold_families = 32;
  traffic.seed = opts.chaos_seed;

  std::printf("# repf chaos --serve | machine=%s | seed=%llu | %d core(s)\n",
              opts.machine.name.c_str(),
              static_cast<unsigned long long>(opts.chaos_seed), traffic.cores);
  TextTable table({"fault rate", "requests", "degraded", "retries", "trips",
                   "shed", "stale-fresh", "replay", "verdict"});

  struct ServeRateResult {
    std::vector<std::string> row;
    serve::ServeRunResult run;
    bool deterministic = false;
    bool ok = false;
  };
  // Each fault rate is an independent double-run unit (the solver is the
  // cheap synthetic one; the service runs inline). Fan the rates out and
  // reduce in order so the table is byte-identical at any --jobs.
  const engine::Executor executor = make_executor(opts);
  const std::vector<ServeRateResult> results =
      executor.map(rates.size(), [&](std::size_t i) {
        serve::ServiceOptions sopts;
        sopts.cache_fault_rate = rates[i];
        sopts.seed = opts.chaos_seed ^ 0xAD115EEDull;
        const std::vector<serve::Family> families = serve::make_families(
            traffic.hot_families, traffic.cold_families);
        const serve::AdvisoryService::Solver solver =
            serve::make_synthetic_solver(families);

        ServeRateResult r;
        r.run = serve::run_serve_sim(traffic, sopts, solver, nullptr);
        const serve::ServeRunResult replay =
            serve::run_serve_sim(traffic, sopts, solver, nullptr);
        r.deterministic = replay.digest == r.run.digest;
        r.ok = r.run.gates_ok() && r.deterministic;
        // A clean schedule must not trip breakers or burn retries.
        if (rates[i] == 0.0 &&
            (r.run.stats.breaker_trips != 0 || r.run.stats.retries != 0)) {
          r.ok = false;
        }
        const auto& s = r.run.stats;
        r.row = {format_percent(rates[i], 0), std::to_string(s.submitted),
                 std::to_string(s.last_known_good + s.no_prefetch),
                 std::to_string(s.retries), std::to_string(s.breaker_trips),
                 std::to_string(s.shed_queue_full + s.shed_infeasible),
                 std::to_string(s.stale_fresh_violations),
                 r.deterministic ? "bytes==" : "DIVERGED",
                 r.ok ? "OK" : "VIOLATION"};
        return r;
      });

  int violations = 0;
  for (const ServeRateResult& r : results) {
    if (!r.ok) ++violations;
    table.add_row(r.row);
  }
  std::fputs(table.render().c_str(), stdout);

  serve::ServeCrashReport crash;
  if (opts.crash_check) {
    crash = serve::serve_crash_check(opts.chaos_seed, 32,
                                     "repf_serve_crash_scratch");
    std::printf("serve crash check: %s -> %s\n", crash.to_string().c_str(),
                crash.ok() ? "OK" : "VIOLATION");
    if (!crash.ok()) ++violations;
  }

  serve::PoisonReport poison;
  if (opts.poison_warm_start) {
    poison = serve::serve_poison_check(opts.chaos_seed, 12,
                                       "repf_serve_poison_scratch");
    std::printf("poisoned warm-start check: %s\n",
                poison.to_string().c_str());
    if (!poison.ok()) ++violations;
  }

  if (!opts.json_path.empty()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"command\": \"chaos\",\n"
         << "  \"serve\": true,\n"
         << "  \"machine\": \"" << json::escape(opts.machine.name) << "\",\n"
         << "  \"seed\": " << opts.chaos_seed << ",\n"
         << "  \"rates\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      json << "    {\n"
           << "    \"fault_rate\": " << json_num(rates[i]) << ",\n"
           << "    \"deterministic\": "
           << (results[i].deterministic ? "true" : "false") << ",\n"
           << serve_stats_json(results[i].run) << ",\n"
           << "    \"ok\": " << (results[i].ok ? "true" : "false") << "\n"
           << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ],\n";
    if (opts.crash_check) {
      json << "  \"crash_check\": {\n"
           << "    \"trials\": " << crash.trials << ",\n"
           << "    \"acked\": " << crash.acked_total << ",\n"
           << "    \"recovered\": " << crash.recovered_total << ",\n"
           << "    \"quarantined\": " << crash.quarantined << ",\n"
           << "    \"lost_acked\": " << crash.lost_acked << ",\n"
           << "    \"alien_entries\": " << crash.alien_entries << ",\n"
           << "    \"ok\": " << (crash.ok() ? "true" : "false") << "\n"
           << "  },\n";
    }
    if (opts.poison_warm_start) {
      json << "  \"poison_warm_start\": {\n"
           << "    \"trials\": " << poison.trials << ",\n"
           << "    \"bitflip_trials\": " << poison.bitflip_trials << ",\n"
           << "    \"stale_fp_trials\": " << poison.stale_fp_trials << ",\n"
           << "    \"truncated_trials\": " << poison.truncated_trials
           << ",\n"
           << "    \"warm_entries_loaded\": " << poison.warm_entries_loaded
           << ",\n"
           << "    \"warm_entries_quarantined\": "
           << poison.warm_entries_quarantined << ",\n"
           << "    \"warm_files_rejected\": " << poison.warm_files_rejected
           << ",\n"
           << "    \"stale_fresh\": " << poison.stale_fresh << ",\n"
           << "    \"alien_served\": " << poison.alien_served << ",\n"
           << "    \"gate_failures\": " << poison.gate_failures << ",\n"
           << "    \"acked_then_lost\": " << poison.acked_then_lost << ",\n"
           << "    \"recovery_failures\": " << poison.recovery_failures
           << ",\n"
           << "    \"ok\": " << (poison.ok() ? "true" : "false") << "\n"
           << "  },\n";
    }
    json << "  \"ok\": " << (violations == 0 ? "true" : "false") << "\n"
         << "}\n";
    const int rc = write_json_report(opts.json_path, json.str());
    if (rc != 0) return rc;
  }

  if (violations > 0) {
    std::printf("chaos FAILED: %d gate violation(s) (reproduce with "
                "--seed %llu)\n",
                violations,
                static_cast<unsigned long long>(opts.chaos_seed));
    return kExitDegraded;
  }
  std::printf("serve chaos gates hold\n");
  return 0;
}

int cmd_chaos(const Options& opts) {
  if (opts.chaos_serve) return cmd_chaos_serve(opts);
  // The full-system chaos mix simulates every core cycle-by-cycle; the
  // [1, 16] cap is a cost bound, not a correctness one, and only applies
  // here (`serve` and `chaos --serve` are virtual-time — no cap).
  const int cores = opts.chaos_cores > 0 ? opts.chaos_cores : 2;
  if (cores > 16) {
    std::fprintf(stderr, "chaos: --cores must be in [1, 16]\n");
    return kExitUsage;
  }

  std::vector<workloads::Program> storage;
  for (int c = 0; c < cores; ++c) {
    storage.push_back(chaos_mix_program(static_cast<std::uint64_t>(c)));
  }
  std::vector<const workloads::Program*> programs;
  for (const workloads::Program& p : storage) programs.push_back(&p);

  runtime::SupervisorOptions sopts;
  sopts.adaptive.window_refs = 1024;
  sopts.adaptive.sampler = core::SamplerConfig{50, 42};
  sopts.adaptive.phases.hysteresis_windows = 1;
  sopts.adaptive.min_reoptimize_refs = 8192;
  sopts.heartbeat_grace_windows = 4;
  sopts.backoff_base_windows = 2;
  sopts.half_open_probe_windows = 2;
  sopts.max_trips = 8;
  sopts.seed = opts.chaos_seed;

  std::vector<double> rates = {0.0, 0.1, 0.25, 0.5};
  if (opts.fault_rate >= 0.0) rates = {opts.fault_rate};

  std::printf("# repf chaos | machine=%s | seed=%llu | %d core(s)\n",
              opts.machine.name.c_str(),
              static_cast<unsigned long long>(opts.chaos_seed), cores);
  TextTable table({"fault rate", "episodes", "trips", "rollbacks",
                   "recoveries", "opens", "worst rec (win)", "vs no-pf",
                   "verdict"});
  // Each fault rate replays its own seeded schedule against its own
  // supervisor instance — independent units, fanned out with ordered
  // reduction so the table is byte-identical at any --jobs.
  struct ChaosRateResult {
    std::vector<std::string> row;
    bool ok = true;
    std::string details;
    // Raw values for the --json report.
    std::size_t episodes = 0;
    std::uint64_t trips = 0, rollbacks = 0, recoveries = 0;
    int opens = 0;
    std::uint64_t worst_recovery_windows = 0;
    double vs_baseline = 0.0;
  };
  const engine::Executor executor = make_executor(opts);
  const std::vector<ChaosRateResult> results =
      executor.map(rates.size(), [&](std::size_t i) {
        const double rate = rates[i];
        runtime::ChaosConfig config;
        config.fault_rate = rate;
        config.horizon_refs = storage[0].total_references();
        config.mean_episode_refs = 8192;
        config.cores = cores;
        config.seed = opts.chaos_seed;

        const runtime::ChaosRunResult result = runtime::run_chaos_mix(
            opts.machine, programs, false, config, sopts);

        int opens = 0;
        std::uint64_t rollbacks = 0, recoveries = 0;
        for (const runtime::DomainStats& d : result.domains) {
          if (d.state == runtime::DomainState::Open) ++opens;
          rollbacks += d.rollbacks;
          recoveries += d.recoveries;
        }
        // The recovery gates: never-hurts within 1 %, recovery within 64
        // windows, no permanently open circuit, no false-positive trips on
        // a clean schedule.
        ChaosRateResult r;
        r.ok = result.worst_vs_baseline <= 1.01 &&
               result.worst_recovery_windows <= 64 && opens == 0;
        if (rate == 0.0 && result.total_trips != 0) r.ok = false;
        r.episodes = result.schedule.episodes().size();
        r.trips = result.total_trips;
        r.rollbacks = rollbacks;
        r.recoveries = recoveries;
        r.opens = opens;
        r.worst_recovery_windows = result.worst_recovery_windows;
        r.vs_baseline = result.worst_vs_baseline;
        r.row = {format_percent(rate, 0),
                 std::to_string(result.schedule.episodes().size()),
                 std::to_string(result.total_trips),
                 std::to_string(rollbacks), std::to_string(recoveries),
                 std::to_string(opens),
                 std::to_string(result.worst_recovery_windows),
                 format_double(result.worst_vs_baseline, 4),
                 r.ok ? "OK" : "VIOLATION"};
        if (opts.verbose) {
          r.details += "-- schedule @ " + format_percent(rate, 0) + "\n" +
                       result.schedule.to_string();
          for (int core = 0; core < static_cast<int>(result.domains.size());
               ++core) {
            r.details += "   core " + std::to_string(core) + ": " +
                         result.domains[core].to_string() + "\n";
          }
        }
        return r;
      });

  int violations = 0;
  std::string details;
  for (const ChaosRateResult& r : results) {
    if (!r.ok) ++violations;
    table.add_row(r.row);
    details += r.details;
  }
  std::fputs(table.render().c_str(), stdout);
  if (opts.verbose) std::fputs(details.c_str(), stdout);

  runtime::CacheCrashReport crash;
  bool crash_ok = true;
  if (opts.crash_check) {
    crash = runtime::chaos_cache_crash_check(opts.chaos_seed, 64,
                                             "repf_chaos_cache_scratch.json");
    crash_ok = crash.failed_loads == 0 && crash.accounting_errors == 0 &&
               crash.survives_torn_write;
    std::printf("cache crash check: %s -> %s\n", crash.to_string().c_str(),
                crash_ok ? "OK" : "VIOLATION");
    if (!crash_ok) ++violations;
  }

  if (!opts.json_path.empty()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"command\": \"chaos\",\n"
         << "  \"serve\": false,\n"
         << "  \"machine\": \"" << json::escape(opts.machine.name) << "\",\n"
         << "  \"seed\": " << opts.chaos_seed << ",\n"
         << "  \"cores\": " << cores << ",\n"
         << "  \"rates\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const ChaosRateResult& r = results[i];
      json << "    {\"fault_rate\": " << json_num(rates[i])
           << ", \"episodes\": " << r.episodes << ", \"trips\": " << r.trips
           << ", \"rollbacks\": " << r.rollbacks
           << ", \"recoveries\": " << r.recoveries
           << ", \"opens\": " << r.opens
           << ", \"worst_recovery_windows\": " << r.worst_recovery_windows
           << ", \"worst_vs_baseline\": " << json_num(r.vs_baseline)
           << ", \"ok\": " << (r.ok ? "true" : "false") << "}"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ],\n";
    if (opts.crash_check) {
      json << "  \"crash_check\": {\n"
           << "    \"trials\": " << crash.trials << ",\n"
           << "    \"clean_loads\": " << crash.clean_loads << ",\n"
           << "    \"degraded_loads\": " << crash.degraded_loads << ",\n"
           << "    \"failed_loads\": " << crash.failed_loads << ",\n"
           << "    \"entries_recovered\": " << crash.entries_recovered << ",\n"
           << "    \"accounting_errors\": " << crash.accounting_errors << ",\n"
           << "    \"survives_torn_write\": "
           << (crash.survives_torn_write ? "true" : "false") << ",\n"
           << "    \"ok\": " << (crash_ok ? "true" : "false") << "\n"
           << "  },\n";
    }
    json << "  \"ok\": " << (violations == 0 ? "true" : "false") << "\n"
         << "}\n";
    const int rc = write_json_report(opts.json_path, json.str());
    if (rc != 0) return rc;
  }

  if (violations > 0) {
    std::printf("chaos FAILED: %d gate violation(s) (reproduce with "
                "--seed %llu)\n",
                violations,
                static_cast<unsigned long long>(opts.chaos_seed));
    return kExitDegraded;
  }
  std::printf("chaos recovery gates hold\n");
  return 0;
}

int cmd_verify(const Options& opts) {
  std::vector<verify::TraceFamily> families;
  if (opts.families.empty()) {
    families = verify::all_trace_families();
  } else {
    std::istringstream list(opts.families);
    std::string name;
    while (std::getline(list, name, ',')) {
      bool found = false;
      for (verify::TraceFamily family : verify::all_trace_families()) {
        if (name == verify::trace_family_name(family)) {
          families.push_back(family);
          found = true;
        }
      }
      if (!found) {
        std::fprintf(stderr, "unknown fuzzer family: %s\n", name.c_str());
        return kExitUsage;
      }
    }
  }

  constexpr std::uint64_t kVariants = 2;
  std::printf("# repf verify | machine=%s | seed=%llu | %zu families x %llu"
              " variants\n",
              opts.machine.name.c_str(),
              static_cast<unsigned long long>(opts.verify_seed),
              families.size(), static_cast<unsigned long long>(kVariants));

  bool failed = false;
  std::printf("== differential oracle: StatStack vs exact LRU\n");
  TextTable table({"family", "var", "refs", "samples", "max app err", "bound",
                   "mddli", "bypass", "verdict"});

  // Every (family, variant) trace is an independent differential unit; fan
  // them out over the engine executor and reduce in declaration order so
  // the report is byte-identical at any --jobs.
  struct Unit {
    verify::TraceFamily family;
    std::uint64_t variant;
  };
  std::vector<Unit> units;
  for (const verify::TraceFamily family : families) {
    for (std::uint64_t variant = 0; variant < kVariants; ++variant) {
      units.push_back({family, variant});
    }
  }
  struct UnitResult {
    std::string family;
    std::uint64_t variant = 0;
    std::uint64_t references = 0;
    std::uint64_t samples = 0;
    double app_error = 0.0;
    double bound = 0.0;
    double mddli = 0.0;
    double bypass = 0.0;
    bool ok = false;
    std::string report;
  };
  const engine::Executor executor = make_executor(opts);
  const std::vector<UnitResult> unit_results =
      executor.map(units.size(), [&](std::size_t i) {
        const Unit& unit = units[i];
        const verify::FuzzedTrace trace =
            verify::make_trace(unit.family, opts.verify_seed, unit.variant);
        const verify::DifferentialResult result =
            verify::run_differential(trace.program, opts.machine);

        UnitResult r;
        r.family = verify::trace_family_name(unit.family);
        r.variant = unit.variant;
        r.references = static_cast<std::uint64_t>(result.references);
        r.samples = static_cast<std::uint64_t>(result.reuse_samples);
        r.app_error = result.max_application_error();
        r.bound = verify::family_app_error_bound(unit.family);
        r.mddli = result.mddli_agreement();
        r.bypass = result.bypass_agreement();
        r.ok = r.app_error <= r.bound &&
               r.mddli >= verify::kMinDecisionAgreement &&
               r.bypass >= verify::kMinDecisionAgreement;
        if (opts.verbose || !r.ok) r.report = result.to_string();
        return r;
      });

  std::string reports;
  for (const UnitResult& r : unit_results) {
    if (!r.ok) failed = true;
    table.add_row({r.family, std::to_string(r.variant),
                   std::to_string(r.references), std::to_string(r.samples),
                   format_percent(r.app_error), format_percent(r.bound),
                   format_percent(r.mddli), format_percent(r.bypass),
                   r.ok ? "OK" : "FAIL"});
    reports += r.report;
  }
  std::fputs(table.render().c_str(), stdout);
  std::fputs(reports.c_str(), stdout);

  std::string golden_status = "skipped";
  if (!opts.golden_dir.empty()) {
    const std::string path =
        opts.golden_dir + "/" + verify::golden_filename(opts.machine.name);
    const std::string rendered = verify::render_golden(
        verify::compute_suite_plans(opts.machine, &executor),
        opts.machine.name);
    if (opts.bless) {
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "repf: cannot write %s\n", path.c_str());
        return kExitFailure;
      }
      out << rendered;
      std::printf("== golden plans: blessed %s\n", path.c_str());
      golden_status = "blessed";
    } else {
      std::ifstream in(path);
      if (!in) {
        std::printf("== golden plans: %s missing (run with --bless)\n",
                    path.c_str());
        failed = true;
        golden_status = "missing";
      } else {
        std::ostringstream text;
        text << in.rdbuf();
        const std::string diff = verify::diff_golden(text.str(), rendered);
        if (diff.empty()) {
          std::printf("== golden plans: %s matches\n", path.c_str());
          golden_status = "match";
        } else {
          std::printf("== golden plans: %s DIFFERS (-golden/+current)\n%s",
                      path.c_str(), diff.c_str());
          failed = true;
          golden_status = "differs";
        }
      }
    }
  }

  if (!opts.json_path.empty()) {
    const auto& num = json_num;
    std::ostringstream json;
    json << "{\n"
         << "  \"command\": \"verify\",\n"
         << "  \"machine\": \"" << json::escape(opts.machine.name) << "\",\n"
         << "  \"seed\": " << opts.verify_seed << ",\n"
         << "  \"traces\": [\n";
    for (std::size_t i = 0; i < unit_results.size(); ++i) {
      const UnitResult& r = unit_results[i];
      json << "    {\"family\": \"" << json::escape(r.family)
           << "\", \"variant\": " << r.variant
           << ", \"references\": " << r.references
           << ", \"samples\": " << r.samples
           << ", \"max_application_error\": " << num(r.app_error)
           << ", \"bound\": " << num(r.bound)
           << ", \"mddli_agreement\": " << num(r.mddli)
           << ", \"bypass_agreement\": " << num(r.bypass)
           << ", \"ok\": " << (r.ok ? "true" : "false") << "}"
           << (i + 1 < unit_results.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"golden\": \"" << json::escape(golden_status) << "\",\n"
         << "  \"ok\": " << (failed ? "false" : "true") << "\n"
         << "}\n";
    const int rc = write_json_report(opts.json_path, json.str());
    if (rc != 0) return rc;
  }

  std::printf(failed ? "verify FAILED\n" : "verify clean\n");
  return failed ? kExitFailure : 0;
}

// repf corun: the multi-programmed scenario matrix. Every (core count,
// scenario) cell runs the composed co-run model against the exact
// shared-LRU oracle and checks the per-family error bounds plus the
// integer attribution identity; the streaming-vs-chase row additionally
// re-runs with hardware prefetching modeled and checks that the composition
// *predicts* the chase victim's degradation. Exit: kExitFailure on any
// bound/prediction violation (output names the seed).
int cmd_corun(const Options& opts) {
  std::vector<int> core_counts = {2, 4, 8};
  if (opts.chaos_cores != 0) {
    if (opts.chaos_cores > 16) {
      std::fprintf(stderr, "corun --cores caps at 16\n");
      return kExitUsage;
    }
    core_counts = {opts.chaos_cores};
  }

  std::printf("# repf corun | machine=%s | seed=%llu\n",
              opts.machine.name.c_str(),
              static_cast<unsigned long long>(opts.verify_seed));

  // Every (core count, scenario, hw) cell is an independent unit; fan out
  // over the engine executor and reduce in declaration order so the report
  // is byte-identical at any --jobs. hw=true cells exist only for the
  // interference-prediction row (streaming_vs_chase).
  struct Unit {
    int cores = 0;
    verify::CoRunScenario scenario;
    bool hw = false;
  };
  std::vector<Unit> units;
  for (const int cores : core_counts) {
    for (verify::CoRunScenario& scenario : verify::corun_scenarios(cores)) {
      const bool interference = scenario.name == "streaming_vs_chase";
      units.push_back({cores, scenario, false});
      if (interference) units.push_back({cores, std::move(scenario), true});
    }
  }

  struct UnitResult {
    verify::CoRunDifferentialResult result;
    double worst_margin = 0.0;  // max over cores of (error - bound)
    bool ok = false;
    std::string report;
  };
  const engine::Executor executor = make_executor(opts);
  const std::vector<UnitResult> unit_results =
      executor.map(units.size(), [&](std::size_t i) {
        const Unit& unit = units[i];
        verify::CoRunDifferentialOptions options;
        options.model_hw_prefetch = unit.hw;
        UnitResult r;
        r.result = verify::run_corun_differential(
            unit.scenario, opts.machine, opts.verify_seed, options);
        r.ok = r.result.attribution_exact;
        r.worst_margin = -1.0;
        for (std::size_t core = 0; core < r.result.per_core.size(); ++core) {
          const double bound = verify::corun_family_error_bound(
              unit.scenario.families[core], unit.cores);
          const double margin =
              r.result.per_core[core].max_error() - bound;
          r.worst_margin = std::max(r.worst_margin, margin);
          if (margin > 0.0) r.ok = false;
        }
        if (opts.verbose || !r.ok) r.report = r.result.to_string();
        return r;
      });

  bool failed = false;
  std::printf("== composed co-run model vs exact shared-LRU oracle\n");
  TextTable table({"cores", "scenario", "hw", "accesses", "max err", "margin",
                   "attrib", "verdict"});
  std::string reports;
  for (std::size_t i = 0; i < units.size(); ++i) {
    const UnitResult& r = unit_results[i];
    if (!r.ok) failed = true;
    std::uint64_t accesses = 0;
    for (const verify::CoRunCoreComparison& c : r.result.per_core) {
      accesses += c.accesses;
    }
    table.add_row({std::to_string(units[i].cores), r.result.scenario,
                   units[i].hw ? "on" : "off", std::to_string(accesses),
                   format_percent(r.result.max_error()),
                   format_percent(r.worst_margin),
                   r.result.attribution_exact ? "exact" : "BROKEN",
                   r.ok ? "OK" : "FAIL"});
    reports += r.report;
  }
  std::fputs(table.render().c_str(), stdout);
  std::fputs(reports.c_str(), stdout);

  // Interference prediction: a pointer-chase victim vs sparse streaming
  // aggressors whose speculative adjacent-line prefetcher fills only the
  // skipped buddy lines — pure pollution, the paper's motivating co-run
  // pathology. The composition must *predict* the victim's degradation
  // before any run (higher shared-LLC miss ratio, no larger capacity
  // share) and the exact interleaved-LRU oracle must confirm it.
  std::printf("== interference prediction (chase victim vs streaming)\n");
  const std::vector<verify::CoRunInterference> interference_results =
      executor.map(core_counts.size(), [&](std::size_t i) {
        return verify::run_corun_interference(opts.machine, core_counts[i],
                                              opts.verify_seed);
      });
  TextTable interference({"cores", "mr off", "mr on", "exact off", "exact on",
                          "share off", "share on", "verdict"});
  for (const verify::CoRunInterference& r : interference_results) {
    const bool ok = r.predicted() && r.confirmed();
    if (!ok) failed = true;
    interference.add_row(
        {std::to_string(r.cores), format_percent(r.victim_mr_off),
         format_percent(r.victim_mr_on), format_percent(r.exact_mr_off),
         format_percent(r.exact_mr_on),
         std::to_string(r.share_off) + "/" + std::to_string(r.llc_lines),
         std::to_string(r.share_on) + "/" + std::to_string(r.llc_lines),
         ok ? "degrades (OK)"
            : (r.predicted() ? "NOT CONFIRMED" : "NOT PREDICTED")});
  }
  std::fputs(interference.render().c_str(), stdout);
  if (opts.verbose) {
    for (const verify::CoRunInterference& r : interference_results) {
      std::fputs(r.to_string().c_str(), stdout);
    }
  }

  std::string golden_status = "skipped";
  if (!opts.golden_dir.empty()) {
    const std::string path = opts.golden_dir + "/" +
                             verify::corun_golden_filename(opts.machine.name);
    const std::string rendered = verify::render_corun_golden(
        verify::compute_corun_suite_plans(opts.machine, &executor),
        opts.machine.name);
    if (opts.bless) {
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "repf: cannot write %s\n", path.c_str());
        return kExitFailure;
      }
      out << rendered;
      std::printf("== co-run golden plans: blessed %s\n", path.c_str());
      golden_status = "blessed";
    } else {
      std::ifstream in(path);
      if (!in) {
        std::printf("== co-run golden plans: %s missing (run with --bless)\n",
                    path.c_str());
        failed = true;
        golden_status = "missing";
      } else {
        std::ostringstream text;
        text << in.rdbuf();
        const std::string diff = verify::diff_golden(text.str(), rendered);
        if (diff.empty()) {
          std::printf("== co-run golden plans: %s matches\n", path.c_str());
          golden_status = "match";
        } else {
          std::printf(
              "== co-run golden plans: %s DIFFERS (-golden/+current)\n%s",
              path.c_str(), diff.c_str());
          failed = true;
          golden_status = "differs";
        }
      }
    }
  }

  if (!opts.json_path.empty()) {
    const auto& num = json_num;
    std::ostringstream json;
    json << "{\n"
         << "  \"command\": \"corun\",\n"
         << "  \"machine\": \"" << json::escape(opts.machine.name) << "\",\n"
         << "  \"seed\": " << opts.verify_seed << ",\n"
         << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < unit_results.size(); ++i) {
      const UnitResult& r = unit_results[i];
      json << "    {\"scenario\": \"" << json::escape(r.result.scenario)
           << "\", \"cores\": " << units[i].cores
           << ", \"hw\": " << (units[i].hw ? "true" : "false")
           << ", \"max_error\": " << num(r.result.max_error())
           << ", \"worst_margin\": " << num(r.worst_margin)
           << ", \"attribution_exact\": "
           << (r.result.attribution_exact ? "true" : "false")
           << ", \"ok\": " << (r.ok ? "true" : "false") << "}"
           << (i + 1 < unit_results.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"interference\": [\n";
    for (std::size_t i = 0; i < interference_results.size(); ++i) {
      const verify::CoRunInterference& r = interference_results[i];
      json << "    {\"cores\": " << r.cores
           << ", \"victim_mr_off\": " << num(r.victim_mr_off)
           << ", \"victim_mr_on\": " << num(r.victim_mr_on)
           << ", \"exact_mr_off\": " << num(r.exact_mr_off)
           << ", \"exact_mr_on\": " << num(r.exact_mr_on)
           << ", \"share_off\": " << r.share_off
           << ", \"share_on\": " << r.share_on
           << ", \"predicted\": " << (r.predicted() ? "true" : "false")
           << ", \"confirmed\": " << (r.confirmed() ? "true" : "false") << "}"
           << (i + 1 < interference_results.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"golden\": \"" << json::escape(golden_status) << "\",\n"
         << "  \"ok\": " << (failed ? "false" : "true") << "\n"
         << "}\n";
    const int rc = write_json_report(opts.json_path, json.str());
    if (rc != 0) return rc;
  }

  if (failed) {
    std::printf("corun FAILED (seed=%llu)\n",
                static_cast<unsigned long long>(opts.verify_seed));
    return kExitFailure;
  }
  std::printf("corun clean\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Options opts;
  opts.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--machine") {
      if (++i >= argc) return usage();
      const std::string which = argv[i];
      if (which == "amd") {
        opts.machine = sim::amd_phenom_ii();
      } else if (which == "intel") {
        opts.machine = sim::intel_sandybridge();
      } else {
        std::fprintf(stderr, "unknown machine: %s\n", which.c_str());
        return kExitUsage;
      }
    } else if (arg == "--hw") {
      opts.hw_prefetch = true;
    } else if (arg == "--optimize") {
      opts.optimize = true;
    } else if (arg == "--no-nt") {
      opts.enable_nt = false;
    } else if (arg == "--stride-centric") {
      opts.stride_centric = true;
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else if (arg == "--rate") {
      if (++i >= argc) return usage();
      opts.fault_rate = std::atof(argv[i]) / 100.0;
      if (opts.fault_rate < 0.0 || opts.fault_rate > 1.0) {
        std::fprintf(stderr, "--rate must be in [0, 100]\n");
        return kExitUsage;
      }
    } else if (arg == "--seed") {
      if (++i >= argc) return usage();
      opts.fault_seed = static_cast<std::uint64_t>(std::atoll(argv[i]));
      opts.verify_seed = opts.fault_seed;
      opts.chaos_seed = opts.fault_seed;
    } else if (arg == "--cores") {
      if (++i >= argc) return usage();
      // Upper bound is per-command: chaos caps at 16 (cycle-accurate cores
      // are expensive), serve takes any count (virtual-time clients).
      const long long cores = std::atoll(argv[i]);
      if (cores < 1 || cores > 1'000'000) {
        std::fprintf(stderr, "--cores must be in [1, 1000000]\n");
        return kExitUsage;
      }
      opts.chaos_cores = static_cast<int>(cores);
    } else if (arg == "--steps") {
      if (++i >= argc) return usage();
      const long long steps = std::atoll(argv[i]);
      if (steps < 1 || steps > 100'000'000) {
        std::fprintf(stderr, "--steps must be in [1, 100000000]\n");
        return kExitUsage;
      }
      opts.serve_steps = static_cast<std::uint64_t>(steps);
    } else if (arg == "--serve") {
      opts.chaos_serve = true;
    } else if (arg == "--crash-check") {
      opts.crash_check = true;
    } else if (arg == "--poison-warm-start") {
      opts.poison_warm_start = true;
    } else if (arg == "--journal") {
      if (++i >= argc) return usage();
      opts.serve_journal_dir = argv[i];
    } else if (arg == "--warm-start") {
      if (++i >= argc) return usage();
      opts.warm_start_dir = argv[i];
    } else if (arg == "--families") {
      if (++i >= argc) return usage();
      opts.families = argv[i];
    } else if (arg == "--golden") {
      if (++i >= argc) return usage();
      opts.golden_dir = argv[i];
    } else if (arg == "--bless") {
      opts.bless = true;
    } else if (arg == "--window") {
      if (++i >= argc) return usage();
      const long long window = std::atoll(argv[i]);
      if (window <= 0) {
        std::fprintf(stderr, "--window must be positive\n");
        return kExitUsage;
      }
      opts.window = static_cast<std::uint64_t>(window);
    } else if (arg == "--threshold") {
      if (++i >= argc) return usage();
      opts.threshold = std::atof(argv[i]);
      if (opts.threshold <= 0.0 || opts.threshold > 2.0) {
        std::fprintf(stderr, "--threshold must be in (0, 2]\n");
        return kExitUsage;
      }
    } else if (arg == "--jobs") {
      if (++i >= argc) return usage();
      const long long jobs = std::atoll(argv[i]);
      if (jobs < 1 || jobs > 256) {
        std::fprintf(stderr, "--jobs must be in [1, 256]\n");
        return kExitUsage;
      }
      opts.jobs = static_cast<int>(jobs);
    } else if (arg == "--scheduler") {
      if (++i >= argc) return usage();
      if (!engine::parse_scheduler_backend(argv[i], &opts.scheduler)) {
        std::fprintf(stderr, "--scheduler must be forkjoin or steal\n");
        return kExitUsage;
      }
    } else if (arg == "--json") {
      if (++i >= argc) return usage();
      opts.json_path = argv[i];
    } else if (arg == "--save-cache") {
      if (++i >= argc) return usage();
      opts.save_cache = argv[i];
    } else if (arg == "--load-cache") {
      if (++i >= argc) return usage();
      opts.load_cache = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else if (!arg.empty() && arg[0] != '-' && opts.target.empty()) {
      opts.target = arg;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return kExitUsage;
    }
  }

  if (opts.command == "--help" || opts.command == "-h" ||
      opts.command == "help") {
    usage();
    return 0;
  }
  if (opts.help) {
    const char* help = help_for(opts.command);
    if (!help) return usage();
    std::fputs(help, stdout);
    return 0;
  }

  try {
    if (opts.command == "list") return cmd_list();
    if (opts.command == "commands") return cmd_commands();
    if (opts.command == "verify") return cmd_verify(opts);
    if (opts.command == "corun") return cmd_corun(opts);
    if (opts.command == "chaos") return cmd_chaos(opts);
    if (opts.command == "serve") return cmd_serve(opts);
    if (opts.target.empty()) return usage();
    if (opts.command == "dump") return cmd_dump(opts);
    if (opts.command == "optimize") return cmd_optimize(opts);
    if (opts.command == "run") return cmd_run(opts);
    if (opts.command == "coverage") return cmd_coverage(opts);
    if (opts.command == "phases") return cmd_phases(opts);
    if (opts.command == "adapt") return cmd_adapt(opts);
    if (opts.command == "faultcheck") return cmd_faultcheck(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "repf: %s\n", e.what());
    return kExitFailure;
  }
  return usage();
}
