// repf — command-line front end for the resource-efficient prefetching
// framework: dump workloads to the trace-program DSL, run the optimization
// pipeline on a DSL file (printing the annotated listing with inserted
// prefetches), simulate programs under any policy, and measure coverage.
//
//   repf list
//   repf dump <benchmark>
//   repf optimize <file|benchmark> [--machine amd|intel] [--no-nt]
//                 [--stride-centric]
//   repf run <file|benchmark> [--machine amd|intel] [--hw] [--optimize]
//   repf coverage <file|benchmark> [--machine amd|intel]
//   repf faultcheck <file|benchmark> [--machine amd|intel] [--rate PCT]
//                 [--seed N] [--verbose]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/functional_sim.hh"
#include "core/fault_injection.hh"
#include "core/phases.hh"
#include "core/pipeline.hh"
#include "sim/system.hh"
#include "support/text_table.hh"
#include "workloads/dsl.hh"
#include "workloads/suite.hh"

namespace {

using namespace re;

struct Options {
  std::string command;
  std::string target;
  sim::MachineConfig machine = sim::amd_phenom_ii();
  bool hw_prefetch = false;
  bool optimize = false;
  bool enable_nt = true;
  bool stride_centric = false;
  bool verbose = false;
  /// Fault rate for `faultcheck` as a fraction; negative = sweep the
  /// default {0, 5, 20, 50} % ladder.
  double fault_rate = -1.0;
  std::uint64_t fault_seed = 0xFA57;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: repf <command> [args]\n"
      "  list                         list built-in workload models\n"
      "  dump <benchmark>             print a workload in the DSL\n"
      "  optimize <file|benchmark>    run the pipeline, print the annotated\n"
      "                               listing  [--machine amd|intel]\n"
      "                               [--no-nt] [--stride-centric]\n"
      "  run <file|benchmark>         simulate  [--machine amd|intel]\n"
      "                               [--hw] [--optimize]\n"
      "  coverage <file|benchmark>    Table-I style coverage row\n"
      "  phases <file|benchmark>      detect execution phases\n"
      "  faultcheck <file|benchmark>  inject profile faults, verify the\n"
      "                               never-hurts degradation invariant\n"
      "                               [--machine amd|intel] [--rate PCT]\n"
      "                               [--seed N] [--verbose]\n");
  return 2;
}

workloads::Program load_target(const std::string& target) {
  const auto& names = workloads::suite_names();
  if (std::find(names.begin(), names.end(), target) != names.end()) {
    return workloads::make_benchmark(target);
  }
  std::ifstream file(target);
  if (!file) {
    throw std::runtime_error("no such benchmark or file: " + target);
  }
  std::ostringstream text;
  text << file.rdbuf();
  return workloads::parse_program(text.str());
}

int cmd_list() {
  std::printf("built-in workload models (paper Table I):\n");
  for (const std::string& name : workloads::suite_names()) {
    const auto p = workloads::make_benchmark(name);
    std::printf("  %-12s %8llu refs/run, %zu static loads\n", name.c_str(),
                static_cast<unsigned long long>(p.total_references()),
                p.static_instruction_count());
  }
  return 0;
}

int cmd_dump(const Options& opts) {
  std::fputs(workloads::print_program(load_target(opts.target)).c_str(),
             stdout);
  return 0;
}

int cmd_optimize(const Options& opts) {
  const workloads::Program program = load_target(opts.target);
  core::OptimizerOptions options;
  options.enable_non_temporal = opts.enable_nt;
  const core::OptimizationReport report =
      opts.stride_centric
          ? core::stride_centric_optimize(program, opts.machine, options)
          : core::optimize_program(program, opts.machine, options);

  std::printf("# %s pass on %s | Δ=%.2f cycles/memop | %zu plans\n",
              opts.stride_centric ? "stride-centric" : "MDDLI",
              opts.machine.name.c_str(), report.cycles_per_memop,
              report.plans.size());
  for (const auto& plan : report.plans) {
    std::printf("#   pc%-3u %s %+lld\n", plan.pc, core::hint_mnemonic(plan.hint),
                static_cast<long long>(plan.distance_bytes));
  }
  std::fputs(workloads::print_program(report.optimized).c_str(), stdout);
  return 0;
}

int cmd_run(const Options& opts) {
  workloads::Program program = load_target(opts.target);
  if (opts.optimize) {
    core::OptimizerOptions options;
    options.enable_non_temporal = opts.enable_nt;
    program = core::optimize_program(program, opts.machine, options).optimized;
  }
  const sim::RunResult run =
      sim::run_single(opts.machine, program, opts.hw_prefetch);
  const auto& mem = run.apps[0].mem;

  TextTable table({"metric", "value"});
  table.add_row({"machine", opts.machine.name});
  table.add_row({"cycles", std::to_string(run.apps[0].cycles)});
  table.add_row({"references", std::to_string(mem.loads)});
  table.add_row({"CPI (per memop)",
                 format_double(static_cast<double>(run.apps[0].cycles) /
                                   static_cast<double>(mem.loads),
                               2)});
  table.add_row({"L1 miss ratio", format_percent(mem.l1_miss_ratio())});
  table.add_row({"off-chip lines", std::to_string(run.dram.total_lines())});
  table.add_row({"bandwidth", format_gbps(run.bandwidth_gbps())});
  table.add_row({"sw prefetches", std::to_string(mem.sw_prefetches_issued)});
  table.add_row({"late prefetches", std::to_string(mem.late_prefetch_hits)});
  table.add_row(
      {"hw prefetch lines", std::to_string(mem.hw_prefetch_dram_lines)});
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_phases(const Options& opts) {
  const workloads::Program program = load_target(opts.target);
  const core::PhasedProfile phased =
      core::profile_with_phases(program, {});
  std::printf("%d phase(s) over %llu references\n", phased.num_phases,
              static_cast<unsigned long long>(
                  phased.full.total_references));
  TextTable table({"segment", "phase", "begin", "end", "refs"});
  for (std::size_t i = 0; i < phased.segments.size(); ++i) {
    const auto& seg = phased.segments[i];
    table.add_row({std::to_string(i), std::to_string(seg.phase_id),
                   std::to_string(seg.begin_ref),
                   std::to_string(seg.end_ref),
                   std::to_string(seg.end_ref - seg.begin_ref)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_coverage(const Options& opts) {
  const workloads::Program program = load_target(opts.target);
  const auto mddli = core::optimize_program(program, opts.machine);
  const auto centric = core::stride_centric_optimize(program, opts.machine);
  const auto cov_m = analysis::measure_coverage(program, mddli.optimized,
                                                opts.machine.l1);
  const auto cov_c = analysis::measure_coverage(program, centric.optimized,
                                                opts.machine.l1);
  TextTable table({"method", "miss coverage", "OH", "prefetches"});
  table.add_row({"MDDLI filtered", format_percent(cov_m.miss_coverage()),
                 format_double(cov_m.overhead(), 1),
                 std::to_string(cov_m.prefetches_executed)});
  table.add_row({"stride-centric", format_percent(cov_c.miss_coverage()),
                 format_double(cov_c.overhead(), 1),
                 std::to_string(cov_c.prefetches_executed)});
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_faultcheck(const Options& opts) {
  const workloads::Program program = load_target(opts.target);
  const sim::RunResult base =
      sim::run_single(opts.machine, program, /*hw_prefetch=*/false);
  const double base_cycles = static_cast<double>(base.apps[0].cycles);
  constexpr double kEpsilon = 0.01;

  const core::Profile profile =
      core::profile_program(program, core::SamplerConfig{});
  const core::OptimizationReport clean =
      core::optimize_program(program, opts.machine);

  std::vector<double> rates = {0.0, 0.05, 0.2, 0.5};
  if (opts.fault_rate >= 0.0) rates = {opts.fault_rate};

  std::printf("# faultcheck %s on %s | baseline %llu cycles | ε = %.0f %%\n",
              program.name.c_str(), opts.machine.name.c_str(),
              static_cast<unsigned long long>(base.apps[0].cycles),
              kEpsilon * 100.0);
  TextTable table({"fault rate", "plans", "suppressed", "vs baseline",
                   "verdict"});
  int violations = 0;
  std::string logs;
  for (const double rate : rates) {
    const core::FaultInjector injector(
        core::FaultConfig::uniform(rate, opts.fault_seed));
    const core::OptimizationReport report = core::optimize_with_profile(
        program, injector.inject(profile), opts.machine);
    const sim::RunResult opt =
        sim::run_single(opts.machine, report.optimized, false);
    const double delta =
        static_cast<double>(opt.apps[0].cycles) / base_cycles - 1.0;

    bool ok = delta <= kEpsilon;
    for (const core::DelinquentLoad& load : report.delinquent_loads) {
      const bool planned = std::any_of(
          report.plans.begin(), report.plans.end(),
          [&](const core::PrefetchPlan& p) { return p.pc == load.pc; });
      if (!planned && !report.degradation.contains(load.pc)) ok = false;
    }
    if (rate == 0.0 && report.plans.size() != clean.plans.size()) ok = false;
    if (!ok) ++violations;

    table.add_row({format_percent(rate), std::to_string(report.plans.size()),
                   std::to_string(report.degradation.size()),
                   format_percent(delta), ok ? "OK" : "VIOLATION"});
    if (opts.verbose && !report.degradation.empty()) {
      logs += "-- degradation log @ " + format_percent(rate) + "\n" +
              report.degradation.to_string();
    }
  }
  std::fputs(table.render().c_str(), stdout);
  if (opts.verbose) std::fputs(logs.c_str(), stdout);
  if (violations > 0) {
    std::printf("FAILED: %d violation(s)\n", violations);
    return 1;
  }
  std::printf("degradation invariant holds\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Options opts;
  opts.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--machine") {
      if (++i >= argc) return usage();
      const std::string which = argv[i];
      if (which == "amd") {
        opts.machine = sim::amd_phenom_ii();
      } else if (which == "intel") {
        opts.machine = sim::intel_sandybridge();
      } else {
        std::fprintf(stderr, "unknown machine: %s\n", which.c_str());
        return 2;
      }
    } else if (arg == "--hw") {
      opts.hw_prefetch = true;
    } else if (arg == "--optimize") {
      opts.optimize = true;
    } else if (arg == "--no-nt") {
      opts.enable_nt = false;
    } else if (arg == "--stride-centric") {
      opts.stride_centric = true;
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else if (arg == "--rate") {
      if (++i >= argc) return usage();
      opts.fault_rate = std::atof(argv[i]) / 100.0;
      if (opts.fault_rate < 0.0 || opts.fault_rate > 1.0) {
        std::fprintf(stderr, "--rate must be in [0, 100]\n");
        return 2;
      }
    } else if (arg == "--seed") {
      if (++i >= argc) return usage();
      opts.fault_seed = static_cast<std::uint64_t>(std::atoll(argv[i]));
    } else if (!arg.empty() && arg[0] != '-' && opts.target.empty()) {
      opts.target = arg;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  try {
    if (opts.command == "list") return cmd_list();
    if (opts.target.empty()) return usage();
    if (opts.command == "dump") return cmd_dump(opts);
    if (opts.command == "optimize") return cmd_optimize(opts);
    if (opts.command == "run") return cmd_run(opts);
    if (opts.command == "coverage") return cmd_coverage(opts);
    if (opts.command == "phases") return cmd_phases(opts);
    if (opts.command == "faultcheck") return cmd_faultcheck(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "repf: %s\n", e.what());
    return 1;
  }
  return usage();
}
