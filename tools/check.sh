#!/usr/bin/env bash
# CI lanes beyond the tier-1 build+ctest. Usage:
#
#   tools/check.sh [lane] [build-dir]
#
# Lanes:
#   asan     (default) build under ASan+UBSan, run the tier-1 test suite.
#            Default build dir: build-asan.
#   werror   build the whole tree with -Werror (RE_WERROR=ON).
#            Default build dir: build-werror.
#   bench    smoke-run every bench_* binary with tiny iteration counts
#            (RE_BENCH_SMOKE=1, RE_MIX_COUNT=2); each must exit 0.
#            Default build dir: build (reuses the tier-1 build).
#   verify   run the differential-verification lane: `ctest -L verify`,
#            then `repf verify` against the committed golden plans for both
#            machines, run twice and compared byte-for-byte (determinism).
#            `tools/check.sh verify --bless` re-blesses the goldens instead.
#            Default build dir: build.
#   chaos    run the chaos-engineering lane under ASan+UBSan: `ctest -L
#            chaos`, then a seeded `repf chaos --crash-check --jobs 2`
#            sweep, run twice and compared byte-for-byte (the
#            schedule-determinism contract: a failing seed from CI
#            reproduces locally with one flag). Default build dir:
#            build-asan.
#   serve    run the advisory-service lane under ASan+UBSan: `ctest -L
#            serve`, bench_serve + bench_serve_fairness smoke soaks
#            (overload, crash, fairness-isolation and poisoned-warm-start
#            gates), and double `repf serve` / `repf chaos --serve
#            --crash-check` / `repf chaos --serve --poison-warm-start`
#            runs compared byte-for-byte (the service determinism
#            contract). Default build dir: build-asan.
#   corun    run the shared-cache co-run lane under ASan+UBSan: `ctest -L
#            corun`, a bench_corun smoke run (interference-prediction +
#            determinism gates), then the full `repf corun` scenario
#            matrix against the committed co-run goldens, run twice at
#            --jobs 2 and compared byte-for-byte. `tools/check.sh corun
#            --bless` re-blesses the co-run goldens instead. Default
#            build dir: build-asan.
#   tsan     build under ThreadSanitizer (RE_SANITIZE=thread), run the
#            unit, verify and engine test labels, then `repf verify
#            --golden --jobs 8` on both machines — the engine's concurrency
#            under the race detector. Default build dir: build-tsan.
#   coverage Debug build with RE_COVERAGE=ON, full ctest, gcov aggregate
#            over src/; fails if line coverage drops more than 2 points
#            below the baseline recorded in DESIGN.md ("Coverage baseline:
#            NN.N %"). Default build dir: build-cov.
#   unit | integration
#            ctest label shortcuts against the tier-1 build
#            (`ctest -L unit` / `ctest -L integration`).
#
# Back-compat: an unknown first argument is treated as the build dir for
# the asan lane (the original single-lane interface).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

LANE="${1:-asan}"
case "$LANE" in
  asan|werror|bench|verify|chaos|serve|corun|tsan|coverage|unit|integration) shift || true ;;
  *) LANE=asan ;;  # first arg is a build dir, keep it in $1
esac

run_asan() {
  local build_dir="${1:-build-asan}"
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRE_SANITIZE=address,undefined
  cmake --build "$build_dir" -j "$JOBS"

  # UBSan failures abort (halt_on_error) so ctest reports them as failures
  # instead of burying them in logs.
  export ASAN_OPTIONS="detect_leaks=0:halt_on_error=1"
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"

  echo "sanitizer lane clean"
}

run_werror() {
  local build_dir="${1:-build-werror}"
  cmake -B "$build_dir" -S . -DRE_WERROR=ON
  cmake --build "$build_dir" -j "$JOBS"
  echo "werror lane clean"
}

run_bench() {
  local build_dir="${1:-build}"
  if [[ ! -d "$build_dir" ]]; then
    cmake -B "$build_dir" -S .
  fi
  cmake --build "$build_dir" -j "$JOBS"

  export RE_BENCH_SMOKE=1
  export RE_MIX_COUNT=2
  local failed=0
  for bench in "$build_dir"/bench/bench_*; do
    [[ -x "$bench" && ! -d "$bench" ]] || continue
    local name
    name="$(basename "$bench")"
    echo "== smoke: $name"
    # Run from the build's bench dir so BENCH_*.json reports land there.
    case "$name" in
      bench_micro_components)
        # google-benchmark binary: cap each micro-bench at a token runtime
        # (plain seconds — the "Nx" repetition syntax needs benchmark >= 1.8).
        (cd "$build_dir/bench" && "./$name" --benchmark_min_time=0.01) \
          > /dev/null || failed=1 ;;
      *)
        (cd "$build_dir/bench" && "./$name") > /dev/null || failed=1 ;;
    esac
    [[ "$failed" == 1 ]] && { echo "FAILED: $name"; exit 1; }
  done
  echo "bench smoke lane clean"
}

ensure_build() {
  local build_dir="$1"
  if [[ ! -d "$build_dir" ]]; then
    cmake -B "$build_dir" -S .
  fi
  cmake --build "$build_dir" -j "$JOBS"
}

run_label() {
  local label="$1" build_dir="${2:-build}"
  ensure_build "$build_dir"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS" -L "$label"
  echo "$label lane clean"
}

run_verify() {
  local build_dir="build"
  local bless=0
  if [[ "${1:-}" == "--bless" ]]; then
    bless=1
    shift || true
  fi
  build_dir="${1:-build}"
  ensure_build "$build_dir"

  if [[ "$bless" == 1 ]]; then
    "$build_dir/tools/repf" verify --bless --golden tests/golden
    "$build_dir/tools/repf" verify --bless --golden tests/golden --machine intel
    echo "goldens re-blessed under tests/golden/"
    return
  fi

  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS" -L verify

  # The oracle sweep must pass against the committed goldens on both
  # machines — and be byte-identical between the serial path, an 8-worker
  # fork-join fan-out, and an 8-worker work-stealing fan-out (the
  # determinism contract behind golden snapshots, RE_TEST_SEED
  # reproduction, --jobs, and --scheduler).
  local out_a out_b out_c
  out_a="$(mktemp)" ; out_b="$(mktemp)" ; out_c="$(mktemp)"
  trap 'rm -f "$out_a" "$out_b" "$out_c"' RETURN
  for machine in amd intel; do
    "$build_dir/tools/repf" verify --golden tests/golden --machine "$machine" \
      --jobs 1 > "$out_a"
    "$build_dir/tools/repf" verify --golden tests/golden --machine "$machine" \
      --jobs 8 --scheduler forkjoin > "$out_b"
    "$build_dir/tools/repf" verify --golden tests/golden --machine "$machine" \
      --jobs 8 --scheduler steal > "$out_c"
    cmp -s "$out_a" "$out_b" || {
      echo "FAILED: repf verify --machine $machine differs at --jobs 1 vs 8"
      diff "$out_a" "$out_b" | head -20
      exit 1
    }
    cmp -s "$out_a" "$out_c" || {
      echo "FAILED: repf verify --machine $machine differs between" \
           "--scheduler forkjoin and steal"
      diff "$out_a" "$out_c" | head -20
      exit 1
    }
    echo "== repf verify --machine $machine: clean + identical at" \
         "--jobs 1/8, forkjoin/steal"
  done
  echo "verify lane clean"
}

run_chaos() {
  # Recovery paths are exactly where latent memory bugs hide (controllers
  # torn down mid-window, overlays swapped under the simulator), so this
  # lane runs the whole harness under ASan+UBSan.
  local build_dir="${1:-build-asan}"
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRE_SANITIZE=address,undefined
  cmake --build "$build_dir" -j "$JOBS"

  export ASAN_OPTIONS="detect_leaks=0:halt_on_error=1"
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS" -L chaos

  # The full fault-rate sweep plus the plan-cache kill/corruption check,
  # run twice and compared byte-for-byte: same seed, same bytes.
  local out_a out_b
  out_a="$(mktemp)" ; out_b="$(mktemp)"
  trap 'rm -f "$out_a" "$out_b"' RETURN
  # --jobs 2 exercises the engine fan-out on the recovery path; the
  # byte-for-byte comparison doubles as the determinism gate for it.
  (cd "$build_dir" && tools/repf chaos --crash-check --jobs 2) > "$out_a"
  (cd "$build_dir" && tools/repf chaos --crash-check --jobs 2) > "$out_b"
  cmp -s "$out_a" "$out_b" || {
    echo "FAILED: repf chaos is not deterministic"
    diff "$out_a" "$out_b" | head -20
    exit 1
  }
  echo "== repf chaos --crash-check --jobs 2: gates hold + deterministic"
  echo "chaos lane clean"
}

run_serve() {
  # The service's robustness envelope lives in its failure paths (deadline
  # cancellation unwinding the optimize graph, breaker-gated shards,
  # journal recovery after torn appends), so the whole lane runs under
  # ASan+UBSan, and everything runs twice: same seed, same bytes.
  local build_dir="${1:-build-asan}"
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRE_SANITIZE=address,undefined
  cmake --build "$build_dir" -j "$JOBS"

  export ASAN_OPTIONS="detect_leaks=0:halt_on_error=1"
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS" -L serve

  # bench_serve in smoke mode still enforces every gate (bounded queue,
  # no stale-as-fresh, p99 within deadline, cross-jobs digest equality).
  (cd "$build_dir/bench" && RE_BENCH_SMOKE=1 ./bench_serve) > /dev/null
  echo "== bench_serve smoke: overload + determinism gates hold"

  # bench_serve_fairness in smoke mode enforces the isolation invariant
  # (a chatty or slow-consumer tenant cannot move a victim's p99 or
  # degraded mix beyond the documented bound) plus the poison sweep.
  (cd "$build_dir/bench" && RE_BENCH_SMOKE=1 ./bench_serve_fairness) > /dev/null
  echo "== bench_serve_fairness smoke: isolation + warm-start gates hold"

  local out_a out_b
  out_a="$(mktemp)" ; out_b="$(mktemp)"
  trap 'rm -f "$out_a" "$out_b"' RETURN
  # The service sim at two worker counts, then the fault-rate sweep with
  # the journal crash check — each compared byte-for-byte across runs.
  (cd "$build_dir" && tools/repf serve --jobs 1) > "$out_a"
  (cd "$build_dir" && tools/repf serve --jobs 8) > "$out_b"
  cmp -s "$out_a" "$out_b" || {
    echo "FAILED: repf serve differs at --jobs 1 vs 8"
    diff "$out_a" "$out_b" | head -20
    exit 1
  }
  echo "== repf serve: gates hold + identical at --jobs 1/8"
  (cd "$build_dir" && tools/repf chaos --serve --crash-check --jobs 2) > "$out_a"
  (cd "$build_dir" && tools/repf chaos --serve --crash-check --jobs 2) > "$out_b"
  cmp -s "$out_a" "$out_b" || {
    echo "FAILED: repf chaos --serve is not deterministic"
    diff "$out_a" "$out_b" | head -20
    exit 1
  }
  echo "== repf chaos --serve --crash-check: gates hold + deterministic"
  # Poisoned warm start under the sanitizers: bit-flipped, stale-fingerprint
  # and truncated journals may only cost warmth (degrade-to-fresh), never
  # serve stale-as-fresh or crash — and the sweep itself must be
  # byte-deterministic across runs.
  (cd "$build_dir" && tools/repf chaos --serve --poison-warm-start) > "$out_a"
  (cd "$build_dir" && tools/repf chaos --serve --poison-warm-start) > "$out_b"
  cmp -s "$out_a" "$out_b" || {
    echo "FAILED: repf chaos --serve --poison-warm-start is not deterministic"
    diff "$out_a" "$out_b" | head -20
    exit 1
  }
  echo "== repf chaos --serve --poison-warm-start: gates hold + deterministic"
  echo "serve lane clean"
}

run_corun() {
  # The co-run path mixes a Fenwick-tree oracle, __int128 interleaving and
  # a fanned-out composition graph — prime sanitizer territory — so the
  # whole lane runs under ASan+UBSan.
  local bless=0
  if [[ "${1:-}" == "--bless" ]]; then
    bless=1
    shift || true
  fi
  local build_dir="${1:-build-asan}"
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRE_SANITIZE=address,undefined
  cmake --build "$build_dir" -j "$JOBS"

  export ASAN_OPTIONS="detect_leaks=0:halt_on_error=1"
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"

  if [[ "$bless" == 1 ]]; then
    "$build_dir/tools/repf" corun --bless --golden tests/golden
    "$build_dir/tools/repf" corun --bless --golden tests/golden --machine intel
    echo "co-run goldens re-blessed under tests/golden/"
    return
  fi

  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS" -L corun

  # bench_corun in smoke mode still enforces every gate (degradation
  # predicted + confirmed, composed error bound, jobs determinism).
  (cd "$build_dir/bench" && RE_BENCH_SMOKE=1 ./bench_corun) > /dev/null
  echo "== bench_corun smoke: interference + determinism gates hold"

  # The full scenario matrix against the committed co-run goldens on both
  # machines, run twice and compared byte-for-byte: same seed, same bytes.
  local out_a out_b
  out_a="$(mktemp)" ; out_b="$(mktemp)"
  trap 'rm -f "$out_a" "$out_b"' RETURN
  for machine in amd intel; do
    "$build_dir/tools/repf" corun --golden tests/golden --machine "$machine" \
      --jobs 2 > "$out_a"
    "$build_dir/tools/repf" corun --golden tests/golden --machine "$machine" \
      --jobs 2 > "$out_b"
    cmp -s "$out_a" "$out_b" || {
      echo "FAILED: repf corun --machine $machine is not deterministic"
      diff "$out_a" "$out_b" | head -20
      exit 1
    }
    echo "== repf corun --machine $machine: bounds hold + deterministic"
  done
  echo "corun lane clean"
}

run_tsan() {
  # The engine fans analysis out over a thread pool; this lane is the race
  # detector for it. The engine label carries the dedicated stress tests —
  # 64 concurrent windowed solves (half on the work-stealing backend) plus
  # the steal storm (scheduler_test.cc: 16 workers x 8 rounds of tiny
  # units, maximal owner/thief claim contention) and plan-cache contention;
  # unit and verify cover the refactored consumers.
  local build_dir="${1:-build-tsan}"
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRE_SANITIZE=thread
  cmake --build "$build_dir" -j "$JOBS"

  export TSAN_OPTIONS="halt_on_error=1"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS" \
    -L 'unit|verify|engine'

  # The golden sweep at 8 workers, on both scheduler backends: every
  # fan-out in the verify path runs under TSan — including steal-deque
  # refills and cross-worker claim CASes — and the plans must still match
  # the committed snapshots.
  for machine in amd intel; do
    for backend in forkjoin steal; do
      "$build_dir/tools/repf" verify --golden tests/golden \
        --machine "$machine" --jobs 8 --scheduler "$backend" > /dev/null
      echo "== repf verify --machine $machine --jobs 8" \
           "--scheduler $backend: clean under TSan"
    done
  done
  echo "tsan lane clean"
}

run_coverage() {
  local build_dir="${1:-build-cov}"
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DRE_COVERAGE=ON
  cmake --build "$build_dir" -j "$JOBS"
  ctest --test-dir "$build_dir" -j "$JOBS" --output-on-failure > /dev/null

  # Aggregate line coverage over src/ with plain gcov (no gcovr/lcov in the
  # image): sum per-file "Lines executed" over every instrumented object.
  local pct
  pct="$(
    cd "$build_dir" &&
    find src -name '*.gcda' | while read -r gcda; do
      gcov -n "${gcda%.gcda}.o" 2>/dev/null
    done | awk '
      /^File/ { f=$2; keep = index(f, "/src/") || index(f, "src/") == 2 }
      /^Lines executed/ && keep {
        split($0, a, ":"); split(a[2], b, "% of ")
        covered += b[1] / 100.0 * b[2]; total += b[2]
      }
      END { if (total) printf "%.1f", 100.0 * covered / total; else printf "0.0" }'
  )"
  echo "line coverage over src/: ${pct}%"

  local baseline
  baseline="$(sed -n 's/.*Coverage baseline: \([0-9.]*\) %.*/\1/p' DESIGN.md | head -1)"
  if [[ -z "$baseline" ]]; then
    echo "no coverage baseline recorded in DESIGN.md; current is ${pct}%"
    exit 1
  fi
  awk -v p="$pct" -v b="$baseline" 'BEGIN { exit !(p + 2.0 >= b) }' || {
    echo "FAILED: coverage ${pct}% is more than 2 points below baseline ${baseline}%"
    exit 1
  }
  echo "coverage lane clean (baseline ${baseline}%)"
}

case "$LANE" in
  asan) run_asan "${1:-}" ;;
  werror) run_werror "${1:-}" ;;
  bench) run_bench "${1:-}" ;;
  verify) run_verify "${1:-}" "${2:-}" ;;
  chaos) run_chaos "${1:-}" ;;
  serve) run_serve "${1:-}" ;;
  corun) run_corun "${1:-}" "${2:-}" ;;
  tsan) run_tsan "${1:-}" ;;
  coverage) run_coverage "${1:-}" ;;
  unit) run_label unit "${1:-}" ;;
  integration) run_label integration "${1:-}" ;;
esac
