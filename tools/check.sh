#!/usr/bin/env bash
# Sanitizer CI lane: build the whole tree under ASan+UBSan and run the
# tier-1 test suite, so the fault-injection / degradation paths stay
# sanitizer-clean. Usage:
#
#   tools/check.sh [build-dir]        # default build dir: build-asan
#
# UBSan failures abort (halt_on_error) so ctest reports them as failures
# instead of burying them in logs.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRE_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$JOBS"

export ASAN_OPTIONS="detect_leaks=0:halt_on_error=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "sanitizer lane clean"
