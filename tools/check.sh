#!/usr/bin/env bash
# CI lanes beyond the tier-1 build+ctest. Usage:
#
#   tools/check.sh [lane] [build-dir]
#
# Lanes:
#   asan    (default) build under ASan+UBSan, run the tier-1 test suite.
#           Default build dir: build-asan.
#   werror  build the whole tree with -Werror (RE_WERROR=ON).
#           Default build dir: build-werror.
#   bench   smoke-run every bench_* binary with tiny iteration counts
#           (RE_BENCH_SMOKE=1, RE_MIX_COUNT=2); each must exit 0.
#           Default build dir: build (reuses the tier-1 build).
#
# Back-compat: an unknown first argument is treated as the build dir for
# the asan lane (the original single-lane interface).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

LANE="${1:-asan}"
case "$LANE" in
  asan|werror|bench) shift || true ;;
  *) LANE=asan ;;  # first arg is a build dir, keep it in $1
esac

run_asan() {
  local build_dir="${1:-build-asan}"
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRE_SANITIZE=address,undefined
  cmake --build "$build_dir" -j "$JOBS"

  # UBSan failures abort (halt_on_error) so ctest reports them as failures
  # instead of burying them in logs.
  export ASAN_OPTIONS="detect_leaks=0:halt_on_error=1"
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"

  echo "sanitizer lane clean"
}

run_werror() {
  local build_dir="${1:-build-werror}"
  cmake -B "$build_dir" -S . -DRE_WERROR=ON
  cmake --build "$build_dir" -j "$JOBS"
  echo "werror lane clean"
}

run_bench() {
  local build_dir="${1:-build}"
  if [[ ! -d "$build_dir" ]]; then
    cmake -B "$build_dir" -S .
  fi
  cmake --build "$build_dir" -j "$JOBS"

  export RE_BENCH_SMOKE=1
  export RE_MIX_COUNT=2
  local failed=0
  for bench in "$build_dir"/bench/bench_*; do
    [[ -x "$bench" && ! -d "$bench" ]] || continue
    local name
    name="$(basename "$bench")"
    echo "== smoke: $name"
    # Run from the build's bench dir so BENCH_*.json reports land there.
    case "$name" in
      bench_micro_components)
        # google-benchmark binary: cap each micro-bench at a token runtime
        # (plain seconds — the "Nx" repetition syntax needs benchmark >= 1.8).
        (cd "$build_dir/bench" && "./$name" --benchmark_min_time=0.01) \
          > /dev/null || failed=1 ;;
      *)
        (cd "$build_dir/bench" && "./$name") > /dev/null || failed=1 ;;
    esac
    [[ "$failed" == 1 ]] && { echo "FAILED: $name"; exit 1; }
  done
  echo "bench smoke lane clean"
}

case "$LANE" in
  asan) run_asan "${1:-}" ;;
  werror) run_werror "${1:-}" ;;
  bench) run_bench "${1:-}" ;;
esac
