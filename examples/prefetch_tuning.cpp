// Prefetch-distance tuning study: shows why the paper's distance formula
// (Section VI-A) matters by sweeping the inserted distance around the
// computed one and measuring speedup and late-prefetch rate.
//
// Usage: prefetch_tuning [benchmark]   (default: libquantum)
#include <cstdio>
#include <string>

#include "core/pipeline.hh"
#include "sim/system.hh"
#include "support/text_table.hh"
#include "workloads/suite.hh"

int main(int argc, char** argv) {
  using namespace re;

  const std::string name = argc > 1 ? argv[1] : "libquantum";
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const workloads::Program program = workloads::make_benchmark(name);

  const core::OptimizationReport report =
      core::optimize_program(program, machine);
  if (report.plans.empty()) {
    std::printf("%s has no prefetchable loads; try a streaming benchmark.\n",
                name.c_str());
    return 0;
  }

  const sim::RunResult base = sim::run_single(machine, program, false);
  std::printf("benchmark: %s | computed distances:", name.c_str());
  for (const auto& plan : report.plans) {
    std::printf(" pc%u:%+lld", plan.pc,
                static_cast<long long>(plan.distance_bytes));
  }
  std::printf(" bytes\n\n");

  TextTable table({"distance scale", "speedup", "late prefetches",
                   "dropped", "DRAM prefetch lines"});
  for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    std::vector<core::PrefetchPlan> scaled = report.plans;
    for (auto& plan : scaled) {
      const auto d = static_cast<std::int64_t>(
          static_cast<double>(plan.distance_bytes) * scale);
      // Keep at least one line of lookahead, like the analysis does.
      plan.distance_bytes =
          d >= 0 ? std::max<std::int64_t>(d, kLineSize)
                 : std::min<std::int64_t>(d, -static_cast<std::int64_t>(
                                                 kLineSize));
    }
    const workloads::Program tuned =
        core::insert_prefetches(program, scaled);
    const sim::RunResult run = sim::run_single(machine, tuned, false);
    const auto& mem = run.apps[0].mem;
    table.add_row(
        {format_double(scale, 2) + "x",
         format_speedup_percent(static_cast<double>(base.apps[0].cycles) /
                                static_cast<double>(run.apps[0].cycles)),
         std::to_string(mem.late_prefetch_hits),
         std::to_string(mem.sw_prefetches_dropped),
         std::to_string(mem.sw_prefetch_dram_lines)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Short distances arrive late (partial stall savings); long\n"
              "distances run past loop ends and evict data before use —\n"
              "the formula P = ceil(l/d)*stride lands in the flat middle.\n");
  return 0;
}
