// Quickstart: profile one workload, run the resource-efficient prefetching
// pipeline, and compare the policies on a simulated AMD Phenom II.
//
// This walks the whole public API surface:
//   workloads::make_benchmark -> core::optimize_program ->
//   sim::run_single -> analysis metrics.
#include <cstdio>

#include "analysis/experiments.hh"
#include "core/pipeline.hh"
#include "sim/config.hh"
#include "support/text_table.hh"
#include "workloads/suite.hh"

int main() {
  using namespace re;

  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const workloads::Program program = workloads::make_benchmark("libquantum");

  std::printf("== Resource-efficient prefetching quickstart ==\n");
  std::printf("machine:   %s (L1 %llu kB, L2 %llu kB, LLC %llu kB, %.1f GHz)\n",
              machine.name.c_str(),
              static_cast<unsigned long long>(machine.l1.size_bytes >> 10),
              static_cast<unsigned long long>(machine.l2.size_bytes >> 10),
              static_cast<unsigned long long>(machine.llc.size_bytes >> 10),
              machine.freq_ghz);
  std::printf("workload:  %s (%llu memory references per run)\n\n",
              program.name.c_str(),
              static_cast<unsigned long long>(program.total_references()));

  // Run the paper's pipeline: sampling -> StatStack -> MDDLI -> stride
  // analysis -> bypass analysis -> insertion.
  const core::OptimizationReport report =
      core::optimize_program(program, machine);

  std::printf("profile:   %zu reuse samples, %zu stride samples, "
              "%llu dangling\n",
              report.profile.reuse_samples.size(),
              report.profile.stride_samples.size(),
              static_cast<unsigned long long>(
                  report.profile.dangling_reuse_samples));
  std::printf("Δ (cycles per memory op): %.2f\n\n", report.cycles_per_memop);

  std::printf("delinquent loads passing the cost-benefit filter:\n");
  TextTable loads({"PC", "MR(L1)", "MR(L2)", "MR(LLC)", "avg miss lat",
                   "est. misses"});
  for (const auto& d : report.delinquent_loads) {
    loads.add_row({"pc" + std::to_string(d.pc),
                   format_percent(d.l1_miss_ratio),
                   format_percent(d.l2_miss_ratio),
                   format_percent(d.llc_miss_ratio),
                   format_double(d.avg_miss_latency, 1),
                   format_double(d.estimated_l1_misses, 0)});
  }
  std::printf("%s\n", loads.render().c_str());

  std::printf("inserted prefetches:\n");
  TextTable plans({"PC", "distance (bytes)", "kind"});
  for (const auto& p : report.plans) {
    plans.add_row({"pc" + std::to_string(p.pc),
                   std::to_string(p.distance_bytes),
                   core::hint_mnemonic(p.hint)});
  }
  std::printf("%s\n", plans.render().c_str());

  // Compare all policies in isolation.
  analysis::PlanCache cache;
  const analysis::BenchmarkEvaluation eval =
      analysis::evaluate_benchmark(machine, program.name, cache);

  TextTable results({"policy", "speedup", "traffic vs base", "bandwidth"});
  for (const auto policy :
       {analysis::Policy::Hardware, analysis::Policy::Software,
        analysis::Policy::SoftwareNT, analysis::Policy::StrideCentric}) {
    results.add_row({analysis::policy_name(policy),
                     format_speedup_percent(eval.speedup(policy)),
                     format_percent(eval.traffic_increase(policy)),
                     format_gbps(eval.bandwidth_gbps(policy))});
  }
  std::printf("%s", results.render().c_str());
  std::printf("(baseline bandwidth: %s)\n",
              format_gbps(eval.bandwidth_gbps(analysis::Policy::Baseline))
                  .c_str());
  return 0;
}
