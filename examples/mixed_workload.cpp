// Mixed-workload scenario: four applications share a four-core machine
// (the paper's Section VII-C situation). Compares no prefetching, hardware
// prefetching, and the resource-efficient software scheme on throughput,
// fairness, QoS and off-chip traffic.
//
// Usage: mixed_workload [app1 app2 app3 app4]
//        (defaults to the paper's Figure 8 mix: cigar gcc lbm libquantum)
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/experiments.hh"
#include "support/text_table.hh"

int main(int argc, char** argv) {
  using namespace re;

  workloads::MixSpec spec{{"cigar", "gcc", "lbm", "libquantum"}};
  if (argc == 5) {
    spec.apps = {argv[1], argv[2], argv[3], argv[4]};
  } else if (argc != 1) {
    std::fprintf(stderr, "usage: %s [app1 app2 app3 app4]\n", argv[0]);
    return 1;
  }

  const sim::MachineConfig machine = sim::intel_sandybridge();
  std::printf("machine: %s (4 cores, shared %llu kB LLC, %.1f GB/s)\n",
              machine.name.c_str(),
              static_cast<unsigned long long>(machine.llc.size_bytes >> 10),
              machine.peak_bandwidth_gbps());
  std::printf("mix:     %s + %s + %s + %s\n\n", spec.apps[0].c_str(),
              spec.apps[1].c_str(), spec.apps[2].c_str(),
              spec.apps[3].c_str());

  analysis::PlanCache cache;
  const std::vector<analysis::Policy> policies = {
      analysis::Policy::Baseline, analysis::Policy::Hardware,
      analysis::Policy::Software, analysis::Policy::SoftwareNT};
  const analysis::MixEvaluation eval = analysis::evaluate_mix(
      machine, spec, cache, workloads::InputSet::Reference, policies);

  // Per-app speedups under each policy.
  TextTable apps({"app", "Hardware Pref.", "Software Pref.",
                  "Soft Pref.+NT"});
  const auto base = eval.times(analysis::Policy::Baseline);
  const auto hw = eval.times(analysis::Policy::Hardware);
  const auto sw = eval.times(analysis::Policy::Software);
  const auto nt = eval.times(analysis::Policy::SoftwareNT);
  for (std::size_t i = 0; i < spec.apps.size(); ++i) {
    apps.add_row({spec.apps[i], format_percent(base[i] / hw[i] - 1.0),
                  format_percent(base[i] / sw[i] - 1.0),
                  format_percent(base[i] / nt[i] - 1.0)});
  }
  std::printf("per-app speedup over the no-prefetching baseline:\n%s\n",
              apps.render().c_str());

  TextTable summary({"metric", "Hardware Pref.", "Software Pref.",
                     "Soft Pref.+NT"});
  auto row = [&](const std::string& name, auto getter) {
    summary.add_row({name, getter(analysis::Policy::Hardware),
                     getter(analysis::Policy::Software),
                     getter(analysis::Policy::SoftwareNT)});
  };
  row("throughput (weighted speedup)", [&](analysis::Policy p) {
    return format_speedup_percent(eval.weighted_speedup(p));
  });
  row("fair speedup", [&](analysis::Policy p) {
    return format_double(eval.fair_speedup(p), 3);
  });
  row("QoS degradation", [&](analysis::Policy p) {
    return format_percent(eval.qos(p));
  });
  row("off-chip traffic vs baseline", [&](analysis::Policy p) {
    return format_percent(eval.traffic_increase(p));
  });
  row("off-chip bandwidth", [&](analysis::Policy p) {
    return format_gbps(eval.bandwidth_gbps(p));
  });
  std::printf("mix summary:\n%s\n", summary.render().c_str());
  std::printf("baseline bandwidth: %s of %s peak\n",
              format_gbps(eval.bandwidth_gbps(analysis::Policy::Baseline))
                  .c_str(),
              format_gbps(machine.peak_bandwidth_gbps()).c_str());
  return 0;
}
