// MRC explorer: profiles a workload with the low-overhead sampler, builds
// the StatStack model, and prints the per-instruction miss-ratio curves and
// the resulting MDDLI classification — the paper's Figures 1-3 as an
// interactive tool.
//
// Usage: mrc_explorer [benchmark] [sample_period]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/bypass.hh"
#include "core/mddli.hh"
#include "core/sampler.hh"
#include "core/statstack.hh"
#include "core/stride_analysis.hh"
#include "sim/config.hh"
#include "support/text_table.hh"
#include "workloads/suite.hh"

int main(int argc, char** argv) {
  using namespace re;

  const std::string name = argc > 1 ? argv[1] : "mcf";
  const std::uint64_t period =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1000;

  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const workloads::Program program = workloads::make_benchmark(name);

  core::SamplerConfig sampler_config;
  sampler_config.sample_period = period;
  const core::Profile profile = core::profile_program(program, sampler_config);
  const core::StatStack model(profile);

  std::printf("benchmark: %s | %llu refs profiled | 1-in-%llu sampling | "
              "%zu reuse + %zu stride samples (%llu dangling)\n\n",
              name.c_str(),
              static_cast<unsigned long long>(profile.total_references),
              static_cast<unsigned long long>(period),
              profile.reuse_samples.size(), profile.stride_samples.size(),
              static_cast<unsigned long long>(
                  profile.dangling_reuse_samples));

  // Per-instruction miss ratio curves at interesting sizes.
  std::vector<std::string> header{"PC", "execs"};
  const std::vector<std::uint64_t> sizes_kb = {8,   16,  32,   64,  128,
                                               256, 512, 1024, 2048};
  for (std::uint64_t kb : sizes_kb) header.push_back(std::to_string(kb) + "k");
  TextTable curves(std::move(header));
  for (Pc pc : model.sampled_pcs()) {
    const core::MissRatioCurve& mrc = model.pc_mrc(pc);
    std::vector<std::string> row{
        "pc" + std::to_string(pc),
        std::to_string(profile.executions_of(pc))};
    for (std::uint64_t kb : sizes_kb) {
      row.push_back(format_percent(mrc.miss_ratio_bytes(kb << 10), 0));
    }
    curves.add_row(std::move(row));
  }
  std::printf("modeled per-instruction miss-ratio curves:\n%s\n",
              curves.render().c_str());
  std::printf("(machine cache sizes: L1 %lluk, L2 %lluk, LLC %lluk)\n\n",
              static_cast<unsigned long long>(machine.l1.size_bytes >> 10),
              static_cast<unsigned long long>(machine.l2.size_bytes >> 10),
              static_cast<unsigned long long>(machine.llc.size_bytes >> 10));

  // MDDLI + stride + bypass classification, per load.
  const auto delinquent =
      core::identify_delinquent_loads(model, profile, machine);
  const auto strides = core::analyze_all_strides(profile);
  const core::ReuseGraph graph(profile);

  TextTable verdicts({"PC", "MR(L1)", "avg miss lat", "cost-benefit",
                      "stride", "dominance", "bypass"});
  for (Pc pc : model.sampled_pcs()) {
    const core::MissRatioCurve& mrc = model.pc_mrc(pc);
    const bool selected =
        std::any_of(delinquent.begin(), delinquent.end(),
                    [&](const auto& d) { return d.pc == pc; });
    std::string stride = "-", dominance = "-";
    for (const core::StrideInfo& info : strides) {
      if (info.pc != pc) continue;
      stride = info.regular ? std::to_string(info.stride) : "irregular";
      dominance = format_percent(info.dominance, 0);
    }
    const double mr_l1 = mrc.miss_ratio_bytes(machine.l1.size_bytes);
    const double lat = core::average_miss_latency(
        machine, mr_l1, mrc.miss_ratio_bytes(machine.l2.size_bytes),
        mrc.miss_ratio_bytes(machine.llc.size_bytes));
    verdicts.add_row({"pc" + std::to_string(pc), format_percent(mr_l1),
                      format_double(lat, 0),
                      selected ? "delinquent" : "rejected", stride, dominance,
                      selected && core::should_bypass(pc, graph, model,
                                                      machine)
                          ? "prefetchnta"
                          : "prefetch"});
  }
  std::printf("MDDLI / stride / bypass classification:\n%s",
              verdicts.render().c_str());
  return 0;
}
